package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck audits sync.Mutex / sync.RWMutex discipline with the dataflow
// engine: every function (and function literal) gets a CFG, lock/unlock
// calls become reaching facts keyed by the canonical receiver expression,
// and the solver proves two properties per lock:
//
//   - no double Lock: a write Lock is never issued while the same lock is
//     already held on every path to that point (a guaranteed self-deadlock);
//   - released on every exit: a lock held on any path reaching the
//     function's exit — with deferred unlocks credited — is reported at its
//     acquisition site (the lock-then-return-without-defer-unlock bug).
//
// The analysis is intraprocedural and syntactic about lock identity
// (s.mu and an alias p := &s.mu are different keys); functions using goto
// are skipped. A deliberate lock handoff can be suppressed with
// //lint:ignore lockcheck <who unlocks and why>.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flags mutexes locked but not released on every path to return, " +
		"double Lock of a held mutex, and lock-then-return without a " +
		"deferred unlock",
	Run: runLockCheck,
}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockDiscipline(pass, fd)
			// Function literals are separate execution contexts (goroutine
			// bodies, deferred cleanups, callbacks); each gets its own CFG.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockDiscipline(pass, lit)
				}
				return true
			})
		}
	}
}

// lockOp is one mutex call site inside a basic block.
type lockOp struct {
	key     string // canonical receiver + "/W" or "/R"
	recv    string // receiver rendering for messages
	name    string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
	pos     token.Pos
	acquire bool // Lock/RLock/TryLock
	try     bool // TryLock/TryRLock: acquisition not guaranteed
}

func checkLockDiscipline(pass *Pass, fn ast.Node) {
	cfg := pass.CFG(fn)
	if cfg == nil || cfg.Hairy {
		return
	}

	// Collect the mutex operations of each block once; bail out early for
	// the overwhelmingly common lock-free function.
	ops := make(map[*Block][]lockOp, len(cfg.Blocks))
	any := false
	firstLock := map[string]token.Pos{}
	lockRecv := map[string]string{}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, op := range mutexOps(pass, n) {
				ops[blk] = append(ops[blk], op)
				any = true
				if op.acquire {
					if _, ok := firstLock[op.key]; !ok {
						firstLock[op.key] = op.pos
						lockRecv[op.key] = op.recv
					}
				}
			}
		}
	}
	if !any {
		return
	}

	// Deferred releases run at every exit; credit them against the held
	// set before judging the exit state. A conditional defer is credited
	// too — under-reporting beats flagging the defer-after-branch idiom.
	deferred := map[string]bool{}
	for _, call := range cfg.Defers {
		for _, op := range deferredReleases(pass, call) {
			deferred[op.key] = true
		}
	}

	transfer := func(blk *Block, in Facts) Facts {
		for _, op := range ops[blk] {
			applyLockOp(in, op)
		}
		return in
	}
	in := cfg.Forward(transfer)

	// Reporting pass 1: double Lock. Replay each reachable block from its
	// solved entry facts; a write Lock issued while the same key is
	// Must-held on every path is a guaranteed self-deadlock.
	reportedDouble := map[string]bool{}
	for _, blk := range cfg.Blocks {
		facts, ok := in[blk]
		if !ok {
			continue
		}
		facts = facts.Clone()
		for _, op := range ops[blk] {
			if op.acquire && !op.try && strings.HasSuffix(op.key, "/W") &&
				facts[op.key] == FactMust && !reportedDouble[op.key] {
				reportedDouble[op.key] = true
				pass.Reportf(op.pos, "%s.%s while %s is already held on every path here: guaranteed deadlock", op.recv, op.name, op.recv)
			}
			applyLockOp(facts, op)
		}
	}

	// Reporting pass 2: held at exit. The exit block's entry facts are the
	// join over every return and the fall-off-the-end path.
	exitFacts, ok := in[cfg.Exit]
	if !ok {
		return // no path reaches the exit (e.g. infinite loop)
	}
	for key, state := range exitFacts {
		if deferred[key] {
			continue
		}
		pos, okPos := firstLock[key]
		if !okPos {
			continue // held only via an op we never saw acquire (impossible today)
		}
		verb := "on some path to return"
		if state == FactMust {
			verb = "on every path to return"
		}
		pass.Reportf(pos, "%s is locked here but still held %s; unlock on every exit or defer the unlock", lockRecv[key], verb)
	}
}

// applyLockOp folds one mutex operation into the fact map. TryLock is a
// deliberate no-op: its acquisition is conditional on its boolean result,
// which a block-level lattice cannot split on, and treating it as held
// would flag the universal `if mu.TryLock() { ...; mu.Unlock() }` idiom.
// A leaked TryLock therefore goes unreported (documented limit).
func applyLockOp(facts Facts, op lockOp) {
	if op.acquire {
		if !op.try {
			facts[op.key] = FactMust
		}
		return
	}
	delete(facts, op.key)
}

// mutexOps extracts the mutex lock/unlock calls a CFG node performs, in
// evaluation order. Function literal bodies and deferred or go'd calls are
// skipped: they do not execute at this program point.
func mutexOps(pass *Pass, n ast.Node) []lockOp {
	var out []lockOp
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if op, ok := mutexCall(pass, nn); ok {
				out = append(out, op)
			}
		}
		return true
	})
	return out
}

// deferredReleases extracts the unlock operations a deferred call performs:
// either directly (defer mu.Unlock()) or inside a deferred function literal
// (defer func() { ...; mu.Unlock() }()).
func deferredReleases(pass *Pass, call *ast.CallExpr) []lockOp {
	var out []lockOp
	if op, ok := mutexCall(pass, call); ok && !op.acquire {
		out = append(out, op)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(nn ast.Node) bool {
			if _, ok := nn.(*ast.FuncLit); ok {
				return false
			}
			if c, ok := nn.(*ast.CallExpr); ok {
				if op, ok := mutexCall(pass, c); ok && !op.acquire {
					out = append(out, op)
				}
			}
			return true
		})
	}
	return out
}

// mutexCall recognizes a call to a sync.Mutex or sync.RWMutex method and
// returns its lockOp.
func mutexCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	name := sel.Sel.Name
	var mode string
	var acquire, try bool
	switch name {
	case "Lock":
		mode, acquire = "/W", true
	case "Unlock":
		mode = "/W"
	case "TryLock":
		mode, acquire, try = "/W", true, true
	case "RLock":
		mode, acquire = "/R", true
	case "RUnlock":
		mode = "/R"
	case "TryRLock":
		mode, acquire, try = "/R", true, true
	default:
		return lockOp{}, false
	}
	if !isSyncMutex(pass.TypeOf(sel.X)) {
		return lockOp{}, false
	}
	recv := exprString(pass.Fset, sel.X)
	return lockOp{
		key:     recv + mode,
		recv:    recv,
		name:    name,
		pos:     call.Pos(),
		acquire: acquire,
		try:     try,
	}, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "sync" {
		return false
	}
	return o.Name() == "Mutex" || o.Name() == "RWMutex"
}

// exprString renders an expression canonically for use as a fact key and in
// messages. Rendering goes through go/printer, so syntactically identical
// expressions share a key regardless of source spacing.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("expr@%d", e.Pos())
	}
	return b.String()
}

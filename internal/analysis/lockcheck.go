package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck audits sync.Mutex / sync.RWMutex discipline with the dataflow
// engine: every function (and function literal) gets a CFG, lock/unlock
// calls become reaching facts keyed by the canonical receiver expression,
// and the solver proves two properties per lock:
//
//   - no double Lock: a write Lock is never issued while the same lock is
//     already held on every path to that point (a guaranteed self-deadlock);
//   - released on every exit: a lock held on any path reaching the
//     function's exit — with deferred unlocks credited — is reported at its
//     acquisition site (the lock-then-return-without-defer-unlock bug).
//
// On top of the per-function dataflow, the module-wide call graph adds an
// INTERPROCEDURAL deadlock check: every function gets a transitive lock
// summary — the receiver- or first-parameter-rooted mutexes it may acquire,
// directly or through further calls on the same subject — and a call made
// while the caller provably holds one of those mutexes is reported at the
// call site. This catches the s.mu.Lock(); s.helper() pattern where helper
// (possibly in another package, possibly several hops away) locks s.mu
// again.
//
// The analysis is syntactic about lock identity (s.mu and an alias
// p := &s.mu are different keys); functions using goto are skipped.
// A deliberate lock handoff can be suppressed with
// //lint:ignore lockcheck <who unlocks and why>.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flags mutexes locked but not released on every path to return, " +
		"double Lock of a held mutex (including through calls, via " +
		"module-wide lock summaries), and lock-then-return without a " +
		"deferred unlock",
	Run: runLockCheck,
}

func runLockCheck(pass *Pass) {
	sums := lockSummaries(pass.CallGraph())
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockDiscipline(pass, fd, sums)
			// Function literals are separate execution contexts (goroutine
			// bodies, deferred cleanups, callbacks); each gets its own CFG.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockDiscipline(pass, lit, sums)
				}
				return true
			})
		}
	}
}

// lockOp is one mutex call site inside a basic block.
type lockOp struct {
	key     string // canonical receiver + "/W" or "/R"
	recv    string // receiver rendering for messages
	name    string // Lock, Unlock, RLock, RUnlock, TryLock, TryRLock
	pos     token.Pos
	acquire bool // Lock/RLock/TryLock
	try     bool // TryLock/TryRLock: acquisition not guaranteed
}

// lockEvent is one entry in a block's replay sequence: either a direct
// mutex operation or a call whose transitive summary acquires mutexes.
type lockEvent struct {
	op   *lockOp
	call *summaryCall
}

// summaryCall is a call site resolved to a callee with a non-empty lock
// summary, with the summary keys rebased onto the caller's expressions.
type summaryCall struct {
	pos  token.Pos
	name string   // callee name for the message
	keys []string // derived fact keys, e.g. "s.mu/W"
}

func checkLockDiscipline(pass *Pass, fn ast.Node, sums map[*CallNode]lockSummary) {
	cfg := pass.CFG(fn)
	if cfg == nil || cfg.Hairy {
		return
	}

	// Collect the mutex operations (and summary-bearing calls) of each
	// block once; bail out early for the overwhelmingly common lock-free
	// function.
	ops := make(map[*Block][]lockOp, len(cfg.Blocks))
	events := make(map[*Block][]lockEvent, len(cfg.Blocks))
	any := false
	firstLock := map[string]token.Pos{}
	lockRecv := map[string]string{}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, ev := range lockEvents(pass, n, sums) {
				events[blk] = append(events[blk], ev)
				if ev.op == nil {
					continue
				}
				op := *ev.op
				ops[blk] = append(ops[blk], op)
				any = true
				if op.acquire {
					if _, ok := firstLock[op.key]; !ok {
						firstLock[op.key] = op.pos
						lockRecv[op.key] = op.recv
					}
				}
			}
		}
	}
	if !any {
		return
	}

	// Deferred releases run at every exit; credit them against the held
	// set before judging the exit state. A conditional defer is credited
	// too — under-reporting beats flagging the defer-after-branch idiom.
	deferred := map[string]bool{}
	for _, call := range cfg.Defers {
		for _, op := range deferredReleases(pass, call) {
			deferred[op.key] = true
		}
	}

	transfer := func(blk *Block, in Facts) Facts {
		for _, op := range ops[blk] {
			applyLockOp(in, op)
		}
		return in
	}
	in := cfg.Forward(transfer)

	// Reporting pass 1: double Lock. Replay each reachable block from its
	// solved entry facts; a write Lock issued while the same key is
	// Must-held on every path is a guaranteed self-deadlock — whether the
	// second acquisition is a direct mutex call or buried inside a callee
	// (per its transitive lock summary).
	reportedDouble := map[string]bool{}
	for _, blk := range cfg.Blocks {
		facts, ok := in[blk]
		if !ok {
			continue
		}
		facts = facts.Clone()
		for _, ev := range events[blk] {
			if ev.call != nil {
				for _, key := range ev.call.keys {
					base, mode := splitLockKey(key)
					held := func(m string) bool { return facts[base+m] == FactMust }
					// Deadlocking combinations: W over W, R over W, W over R.
					deadlock := (held("/W")) || (mode == "/W" && held("/R"))
					rk := ev.call.name + "\x00" + key
					if deadlock && !reportedDouble[rk] {
						reportedDouble[rk] = true
						pass.Reportf(ev.call.pos, "call to %s acquires %s while it is already held on every path here: guaranteed deadlock", ev.call.name, base)
					}
				}
				continue
			}
			op := *ev.op
			if op.acquire && !op.try && strings.HasSuffix(op.key, "/W") &&
				facts[op.key] == FactMust && !reportedDouble[op.key] {
				reportedDouble[op.key] = true
				pass.Reportf(op.pos, "%s.%s while %s is already held on every path here: guaranteed deadlock", op.recv, op.name, op.recv)
			}
			applyLockOp(facts, op)
		}
	}

	// Reporting pass 2: held at exit. The exit block's entry facts are the
	// join over every return and the fall-off-the-end path.
	exitFacts, ok := in[cfg.Exit]
	if !ok {
		return // no path reaches the exit (e.g. infinite loop)
	}
	for key, state := range exitFacts {
		if deferred[key] {
			continue
		}
		pos, okPos := firstLock[key]
		if !okPos {
			continue // held only via an op we never saw acquire (impossible today)
		}
		verb := "on some path to return"
		if state == FactMust {
			verb = "on every path to return"
		}
		pass.Reportf(pos, "%s is locked here but still held %s; unlock on every exit or defer the unlock", lockRecv[key], verb)
	}
}

// applyLockOp folds one mutex operation into the fact map. TryLock is a
// deliberate no-op: its acquisition is conditional on its boolean result,
// which a block-level lattice cannot split on, and treating it as held
// would flag the universal `if mu.TryLock() { ...; mu.Unlock() }` idiom.
// A leaked TryLock therefore goes unreported (documented limit).
func applyLockOp(facts Facts, op lockOp) {
	if op.acquire {
		if !op.try {
			facts[op.key] = FactMust
		}
		return
	}
	delete(facts, op.key)
}

// lockEvents extracts the mutex lock/unlock calls AND the summary-bearing
// calls a CFG node performs, in evaluation order. Function literal bodies
// and deferred or go'd calls are skipped: they do not execute at this
// program point.
func lockEvents(pass *Pass, n ast.Node, sums map[*CallNode]lockSummary) []lockEvent {
	var out []lockEvent
	graph := pass.CallGraph()
	ast.Inspect(n, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if op, ok := mutexCall(pass, nn); ok {
				op := op
				out = append(out, lockEvent{op: &op})
				return true
			}
			if sc := summarizeCallSite(pass, graph, nn, sums); sc != nil {
				out = append(out, lockEvent{call: sc})
			}
		}
		return true
	})
	return out
}

// summarizeCallSite rebases a callee's lock summary onto the caller's call
// expression: the callee's subject (receiver or first parameter) is
// replaced by the argument expression at this site, yielding fact keys in
// the caller's own vocabulary.
func summarizeCallSite(pass *Pass, graph *CallGraph, call *ast.CallExpr, sums map[*CallNode]lockSummary) *summaryCall {
	callee := calleeFunc(pass.Pkg.Info, call)
	if callee == nil {
		return nil
	}
	node := graph.Node(callee)
	if node == nil {
		return nil
	}
	sum := sums[node]
	if len(sum) == 0 {
		return nil
	}
	// The expression standing in for the callee's subject at this site.
	var subjExpr ast.Expr
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil // method value call: subject unknown here
		}
		subjExpr = sel.X
	} else {
		if len(call.Args) == 0 {
			return nil
		}
		subjExpr = call.Args[0]
	}
	if e, ok := ast.Unparen(subjExpr).(*ast.UnaryExpr); ok && e.Op == token.AND {
		subjExpr = e.X
	}
	base := exprString(pass.Fset, subjExpr)
	sc := &summaryCall{pos: call.Pos(), name: callee.Name()}
	for key := range sum {
		sc.keys = append(sc.keys, base+key)
	}
	sort.Strings(sc.keys)
	return sc
}

// splitLockKey splits a fact key into its expression base and /W-/R mode.
func splitLockKey(key string) (base, mode string) {
	if strings.HasSuffix(key, "/W") || strings.HasSuffix(key, "/R") {
		return key[:len(key)-2], key[len(key)-2:]
	}
	return key, ""
}

// A lockSummary records the mutexes a function may acquire, keyed by the
// path from its subject (receiver or first parameter) to the mutex plus
// the /W-/R mode: "/W" means the subject IS the mutex, ".mu/W" a field.
type lockSummary map[string]bool

// lockSummaries computes the transitive lock summaries of every graph
// node, memoized on the graph so the fixpoint runs once per lint run. The
// propagation step composes paths: if F's body calls subj.g() and g's
// summary says ".mu/W", F's summary gains ".mu/W"; if F calls
// helper(&subj.mu) and helper's summary says "/W", F gains ".mu/W".
func lockSummaries(graph *CallGraph) map[*CallNode]lockSummary {
	return graph.Memo("lockcheck.summaries", func() any {
		direct := make(map[*CallNode]lockSummary)
		type prop struct {
			from *CallNode // callee whose summary flows in
			rel  string    // path from this node's subject to callee's subject
		}
		props := make(map[*CallNode][]prop)

		graph.Nodes(func(n *CallNode) {
			subj := subjectObject(n)
			if subj == nil {
				return
			}
			info := n.Pkg.Info
			sum := lockSummary{}
			ast.Inspect(n.Decl.Body, func(nn ast.Node) bool {
				switch nn := nn.(type) {
				case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
					return false
				case *ast.CallExpr:
					// Direct acquisition rooted at the subject.
					if mi, ok := mutexCallInfo(info, nn); ok {
						if mi.acquire && !mi.try {
							if rel, ok := relPathFrom(info, subj, mi.sel.X); ok {
								sum[rel+mi.mode] = true
							}
						}
						return true
					}
					// Propagation through a call passing the subject on.
					callee := calleeFunc(info, nn)
					if callee == nil {
						return true
					}
					target := graph.Node(callee)
					if target == nil || subjectObject(target) == nil {
						return true
					}
					var subjExpr ast.Expr
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr)
						if !ok {
							return true
						}
						subjExpr = sel.X
					} else if len(nn.Args) > 0 {
						subjExpr = nn.Args[0]
					} else {
						return true
					}
					if rel, ok := relPathFrom(info, subj, subjExpr); ok {
						props[n] = append(props[n], prop{from: target, rel: rel})
					}
				}
				return true
			})
			if len(sum) > 0 {
				direct[n] = sum
			}
		})

		// Fixpoint: summaries only grow and keys are bounded by source
		// syntax, so iteration terminates (mutual recursion converges).
		sums := make(map[*CallNode]lockSummary, len(direct))
		for n, s := range direct {
			c := lockSummary{}
			for k := range s {
				c[k] = true
			}
			sums[n] = c
		}
		for changed := true; changed; {
			changed = false
			graph.Nodes(func(n *CallNode) {
				for _, p := range props[n] {
					for k := range sums[p.from] {
						key := p.rel + k
						if sums[n] == nil {
							sums[n] = lockSummary{}
						}
						if !sums[n][key] {
							sums[n][key] = true
							changed = true
						}
					}
				}
			})
		}
		return sums
	}).(map[*CallNode]lockSummary)
}

// subjectObject returns the summary subject of a node: the receiver for
// methods, the first named parameter for free functions, nil when neither
// exists.
func subjectObject(n *CallNode) types.Object {
	fd := n.Decl
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		return n.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	}
	if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 && len(fd.Type.Params.List[0].Names) > 0 {
		return n.Pkg.Info.Defs[fd.Type.Params.List[0].Names[0]]
	}
	return nil
}

// relPathFrom renders the selector path from subj to expr: expr ≡ subj (or
// &subj) yields "", subj.f yields ".f", subj.a.b yields ".a.b". Any other
// shape reports false.
func relPathFrom(info *types.Info, subj types.Object, expr ast.Expr) (string, bool) {
	e := ast.Unparen(expr)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	var path string
	for {
		switch v := e.(type) {
		case *ast.SelectorExpr:
			path = "." + v.Sel.Name + path
			e = ast.Unparen(v.X)
		case *ast.Ident:
			if info.Uses[v] == subj {
				return path, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// deferredReleases extracts the unlock operations a deferred call performs:
// either directly (defer mu.Unlock()) or inside a deferred function literal
// (defer func() { ...; mu.Unlock() }()).
func deferredReleases(pass *Pass, call *ast.CallExpr) []lockOp {
	var out []lockOp
	if op, ok := mutexCall(pass, call); ok && !op.acquire {
		out = append(out, op)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(nn ast.Node) bool {
			if _, ok := nn.(*ast.FuncLit); ok {
				return false
			}
			if c, ok := nn.(*ast.CallExpr); ok {
				if op, ok := mutexCall(pass, c); ok && !op.acquire {
					out = append(out, op)
				}
			}
			return true
		})
	}
	return out
}

// mutexCall recognizes a call to a sync.Mutex or sync.RWMutex method and
// returns its lockOp.
func mutexCall(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	mi, ok := mutexCallInfo(pass.Pkg.Info, call)
	if !ok {
		return lockOp{}, false
	}
	recv := exprString(pass.Fset, mi.sel.X)
	return lockOp{
		key:     recv + mi.mode,
		recv:    recv,
		name:    mi.sel.Sel.Name,
		pos:     call.Pos(),
		acquire: mi.acquire,
		try:     mi.try,
	}, true
}

// mutexOpInfo is the pass-independent shape of a recognized mutex method
// call, used both by the per-function dataflow (via mutexCall) and by the
// cross-package summary builder, which has an *types.Info but no Pass.
type mutexOpInfo struct {
	sel     *ast.SelectorExpr
	mode    string // "/W" or "/R"
	acquire bool
	try     bool
}

// mutexCallInfo recognizes a call to a sync.Mutex or sync.RWMutex method
// using only type info.
func mutexCallInfo(info *types.Info, call *ast.CallExpr) (mutexOpInfo, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexOpInfo{}, false
	}
	var mode string
	var acquire, try bool
	switch sel.Sel.Name {
	case "Lock":
		mode, acquire = "/W", true
	case "Unlock":
		mode = "/W"
	case "TryLock":
		mode, acquire, try = "/W", true, true
	case "RLock":
		mode, acquire = "/R", true
	case "RUnlock":
		mode = "/R"
	case "TryRLock":
		mode, acquire, try = "/R", true, true
	default:
		return mutexOpInfo{}, false
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return mutexOpInfo{}, false
	}
	return mutexOpInfo{sel: sel, mode: mode, acquire: acquire, try: try}, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	o := named.Obj()
	if o.Pkg() == nil || o.Pkg().Path() != "sync" {
		return false
	}
	return o.Name() == "Mutex" || o.Name() == "RWMutex"
}

// exprString renders an expression canonically for use as a fact key and in
// messages. Rendering goes through go/printer, so syntactically identical
// expressions share a key regardless of source spacing.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("expr@%d", e.Pos())
	}
	return b.String()
}

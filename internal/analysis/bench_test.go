package analysis

import "testing"

// BenchmarkLint measures a full-repo run of the complete analyzer suite —
// parse, type-check, CFG and call-graph construction, and all registered
// checks over every module package — which is what `make lint` pays on
// each CI run. Each iteration uses a fresh loader so module loading and
// the whole-graph build are re-measured (memoized reruns would measure
// the wrong thing); the process-wide stdlib importer cache stays warm
// across iterations, exactly as it does within one real invocation.
func BenchmarkLint(b *testing.B) {
	root, modPath, err := FindModule(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := NewLoader(root, modPath).Expand([]string{root + "/..."})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the process-wide stdlib importer cache so the timed iterations
	// measure steady state, not the one-off stdlib parse.
	if _, err := Run(NewLoader(root, modPath), pkgs, All); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := Run(NewLoader(root, modPath), pkgs, All)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo is not lint-clean: %v", diags[0])
		}
	}
}

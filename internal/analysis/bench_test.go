package analysis

import "testing"

// BenchmarkLint measures a full-repo run of the complete analyzer suite —
// parse, type-check, CFG construction, and all registered checks over
// every module package — which is what `make lint` pays on each CI run.
// Each iteration uses a fresh loader: package loading dominates real
// invocations, so memoized reruns would measure the wrong thing.
func BenchmarkLint(b *testing.B) {
	root, modPath, err := FindModule(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := NewLoader(root, modPath).Expand([]string{root + "/..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags, err := Run(NewLoader(root, modPath), pkgs, All)
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repo is not lint-clean: %v", diags[0])
		}
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked (non-test) package of the module.
type Package struct {
	// Path is the import path, e.g. "strudel/internal/features".
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Filenames lists the parsed files, sorted, parallel to Files.
	Filenames []string
	// Files holds the parsed syntax trees (comments included).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info records the type-checker's findings for Files.
	Info *types.Info

	// cfgs memoizes per-function control-flow graphs (see Pass.CFG) so
	// every analyzer in a run shares one graph per function.
	cfgs map[ast.Node]*CFG
}

// Loader parses and type-checks the packages of a single module without
// go/packages: module-internal imports are resolved recursively from the
// module root, everything else (the standard library) goes through a
// process-shared go/importer source importer. Module files all share the
// loader's token.FileSet, so positions from any module file are comparable;
// stdlib positions live in the shared importer's own FileSet (analyzers
// never report into the standard library, so those positions are unused).
type Loader struct {
	Fset *token.FileSet
	// ModuleRoot is the directory holding go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
	// graph memoizes the module-wide call graph over every loaded package
	// (see Loader.CallGraph); loading another package invalidates it.
	graph *CallGraph
}

// NewLoader returns a loader for the module rooted at moduleRoot with the
// given module path.
func NewLoader(moduleRoot, modulePath string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	l.std = stdImporter()
	return l
}

// stdImporter returns the process-wide standard-library importer. Importing
// from source parses and type-checks the full dependency closure of every
// stdlib import, which dominates the cost of a load; the resulting
// *types.Package values are immutable for the life of the process, so one
// shared importer (with its own FileSet and package cache) serves every
// Loader — the moral equivalent of compiler export data. Access is
// serialized: the source importer's internal cache is not concurrency-safe.
var std struct {
	once sync.Once
	mu   sync.Mutex
	imp  types.ImporterFrom
}

func stdImporter() types.ImporterFrom {
	std.once.Do(func() {
		if imp, ok := importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom); ok {
			std.imp = imp
		}
	})
	return std.imp
}

// FindModule walks up from dir to the nearest go.mod and returns the module
// root directory and declared module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Dir returns the source directory of an import path inside the module.
func (l *Loader) dirOf(importPath string) (string, error) {
	if importPath == l.ModulePath {
		return l.ModuleRoot, nil
	}
	rel, ok := strings.CutPrefix(importPath, l.ModulePath+"/")
	if !ok {
		return "", fmt.Errorf("analysis: %s is not inside module %s", importPath, l.ModulePath)
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), nil
}

// Load parses and type-checks the package at the given module import path,
// memoizing the result. Test files (*_test.go) are excluded: the analyzers
// deliberately see only the shipped library and command code.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, err := l.dirOf(importPath)
	if err != nil {
		return nil, err
	}
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	p := &Package{Path: importPath, Dir: dir}
	for _, name := range names {
		file, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Filenames = append(p.Filenames, name)
		p.Files = append(p.Files, file)
	}

	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: chainImporter{l}}
	tpkg, err := conf.Check(importPath, l.Fset, p.Files, p.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p.Types = tpkg
	l.pkgs[importPath] = p
	l.graph = nil // the memoized call graph no longer covers every package
	return p, nil
}

// Loaded returns the already-loaded package for an import path, or nil. It
// lets analyzers peek at the syntax of dependency packages (featureparity
// resolves cross-package constants this way) without forcing new loads.
func (l *Loader) Loaded(importPath string) *Package {
	return l.pkgs[importPath]
}

// chainImporter resolves module-internal imports through the loader and
// delegates everything else to the stdlib source importer.
type chainImporter struct{ l *Loader }

func (c chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, c.l.ModuleRoot, 0)
}

func (c chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := c.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if l.std == nil {
		return nil, fmt.Errorf("analysis: no importer for %s", path)
	}
	std.mu.Lock()
	defer std.mu.Unlock()
	return l.std.ImportFrom(path, dir, mode)
}

// goFilesIn lists the non-test .go files of a directory, sorted, so parse
// order (and therefore everything downstream) is deterministic.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line package patterns into module import paths.
// Supported shapes: "./...", "./dir/...", "./dir", ".", a bare module import
// path, or an absolute directory inside the module. Directories named
// "testdata", hidden directories, and directories without buildable Go
// files are skipped.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.ModuleRoot
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			if dir == "." || strings.HasPrefix(dir, "./") || strings.HasPrefix(dir, "../") {
				abs, err := filepath.Abs(dir)
				if err != nil {
					return nil, err
				}
				dir = abs
			} else {
				// Treat as an import path.
				d, err := l.dirOf(pat)
				if err != nil {
					return nil, err
				}
				dir = d
			}
		}
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", pat, l.ModulePath)
		}
		if !recursive {
			add(importPathFor(l.ModulePath, rel))
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != dir && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
				return filepath.SkipDir
			}
			files, err := goFilesIn(path)
			if err != nil {
				return err
			}
			if len(files) == 0 {
				return nil
			}
			r, err := filepath.Rel(l.ModuleRoot, path)
			if err != nil {
				return err
			}
			add(importPathFor(l.ModulePath, r))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func importPathFor(modulePath, rel string) string {
	if rel == "." || rel == "" {
		return modulePath
	}
	return modulePath + "/" + filepath.ToSlash(rel)
}

package analysis

// LostCancel is the must-release check specialized to context cancel
// functions: every context.CancelFunc obtained from
// context.WithCancel/WithTimeout/WithDeadline (or signal.NotifyContext)
// must be called or deferred on every path to return. Unlike vet's
// intraprocedural lostcancel, passing the cancel func to a callee whose
// summary invokes it on every path discharges the obligation, as does
// storing it in a struct field some module function invokes. The dataflow
// and summaries live in reslife.go, shared with rescleak.
//
// A deliberate detachment can be suppressed with
// //lint:ignore lostcancel <who cancels and why>.
var LostCancel = &Analyzer{
	Name: "lostcancel",
	Doc: "flags context cancel functions not called or deferred on every " +
		"path to return, crediting cancels delegated to callees via " +
		"call-graph summaries (strictly stronger than vet's lostcancel)",
	Run: runLostCancel,
}

func runLostCancel(pass *Pass) {
	runResLifetime(pass, func(k resKind) bool { return k == resCancel })
}

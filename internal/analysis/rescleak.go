package analysis

// RescLeak is the must-release check for OS-backed resources: files,
// listeners, timers, tickers, and HTTP response bodies acquired in a
// function must be released on every path to return, with ownership
// transfers (returning the resource, storing it in a released field,
// sending it on a channel, or passing it to a function whose summary
// releases it) discharging the obligation interprocedurally. See reslife.go
// for the dataflow and the summary machinery shared with lostcancel.
//
// A deliberate handoff the summaries cannot see can be suppressed with
// //lint:ignore rescleak <who releases it and why>.
var RescLeak = &Analyzer{
	Name: "rescleak",
	Doc: "flags acquired resources (os.Open/Create, net.Listen, " +
		"time.NewTimer/NewTicker, http response bodies) not released on " +
		"every path to return, with call-graph ownership-transfer " +
		"summaries discharging handoffs",
	Run: runRescLeak,
}

func runRescLeak(pass *Pass) {
	runResLifetime(pass, func(k resKind) bool { return k != resCancel })
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FeatureParity is the Strudel-specific cross-check over the feature
// machinery in internal/features: the Table 1 line features and Table 2
// cell features each exist in several places at once — a name list, group
// index sets for the ablation experiments, and an extractor that fills the
// vector — and nothing but convention keeps them aligned. This analyzer
// makes the alignment a compile-gate:
//
//   - LineFeatureNames must be a literal list, NumLineFeatures must be
//     len(LineFeatureNames), and the Line*Features group index sets must
//     partition [0, len(LineFeatureNames)).
//   - The LineFeatures extractor must write every constant vector slot
//     0..len-1 (a name without an extractor slot, or vice versa, is an
//     error).
//   - CellFeatureNames (built by buildCellFeatureNames) is counted
//     symbolically — including appends inside ranges over fixed-size
//     arrays — and the Cell*Features group sets must partition
//     [0, count). neighborOffsets and neighborNames must agree in length.
//   - The CellFeatures extractor's cursor-style writes (f[i] = ...; i++,
//     i += k, copy(f[i:i+k], ...)) are interpreted abstractly and must
//     cover exactly [0, count).
//
// The analyzer activates on any package that declares LineFeatureNames or
// CellFeatureNames, so fixtures exercise it the same way internal/features
// does.
var FeatureParity = &Analyzer{
	Name: "featureparity",
	Doc:  "cross-checks feature-name lists, group index sets, and extractor vector slots for Table 1/Table 2 features",
	Run:  runFeatureParity,
}

func runFeatureParity(pass *Pass) {
	fp := &parityPass{Pass: pass, vars: map[string]*varDecl{}, funcs: map[string]*ast.FuncDecl{}}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					fp.funcs[d.Name.Name] = d
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							fp.vars[name.Name] = &varDecl{name: name, value: vs.Values[i]}
						}
					}
				}
			}
		}
	}
	if fp.vars["LineFeatureNames"] != nil {
		fp.checkLineSide()
	}
	if fp.vars["CellFeatureNames"] != nil {
		fp.checkCellSide()
	}
}

type varDecl struct {
	name  *ast.Ident
	value ast.Expr
}

type parityPass struct {
	*Pass
	vars  map[string]*varDecl
	funcs map[string]*ast.FuncDecl
}

// ---- line features ----

func (fp *parityPass) checkLineSide() {
	names := fp.vars["LineFeatureNames"]
	lit, ok := names.value.(*ast.CompositeLit)
	if !ok {
		fp.Reportf(names.value.Pos(), "LineFeatureNames must be a composite literal so the feature count is statically checkable")
		return
	}
	n := len(lit.Elts)

	if num := fp.vars["NumLineFeatures"]; num != nil && !isLenOf(num.value, "LineFeatureNames") {
		fp.Reportf(num.value.Pos(), "NumLineFeatures must be len(LineFeatureNames), not an independent constant")
	}

	fp.checkPartition("line feature groups",
		[]string{"LineContentFeatures", "LineContextualFeatures", "LineComputationalFeatures"},
		n, lineFeatureName(lit))

	if fn := fp.funcs["LineFeatures"]; fn != nil && fn.Body != nil {
		fp.checkLineExtractor(fn, n, lineFeatureName(lit))
	}
}

// lineFeatureName maps a slot index to its display name for diagnostics.
func lineFeatureName(lit *ast.CompositeLit) func(int) string {
	return func(i int) string {
		if i < 0 || i >= len(lit.Elts) {
			return fmt.Sprintf("#%d", i)
		}
		if bl, ok := lit.Elts[i].(*ast.BasicLit); ok {
			return strings.Trim(bl.Value, `"`)
		}
		return fmt.Sprintf("#%d", i)
	}
}

// checkLineExtractor verifies that LineFeatures writes each constant slot
// of a []float64 vector exactly within [0, n).
func (fp *parityPass) checkLineExtractor(fn *ast.FuncDecl, n int, nameOf func(int) string) {
	written := map[int]bool{}
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		as, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok || !isFloatSlice(fp.TypeOf(idx.X)) {
				continue
			}
			v, ok := fp.constInt(idx.Index, nil)
			if !ok {
				continue
			}
			if v < 0 || v >= n {
				fp.Reportf(idx.Pos(), "LineFeatures writes slot %d but LineFeatureNames has only %d entries", v, n)
				continue
			}
			written[v] = true
		}
		return true
	})
	if len(written) == 0 {
		return // extractor does not use constant indexing; nothing to check
	}
	for i := 0; i < n; i++ {
		if !written[i] {
			fp.Reportf(fn.Pos(), "LineFeatures never writes slot %d (%s); the name list and the extractor are out of sync", i, nameOf(i))
		}
	}
}

// ---- cell features ----

func (fp *parityPass) checkCellSide() {
	decl := fp.vars["CellFeatureNames"]
	n, ok := fp.cellNameCount(decl.value)
	if !ok {
		return // cellNameCount already reported
	}

	if num := fp.vars["NumCellFeatures"]; num != nil && !isLenOf(num.value, "CellFeatureNames") {
		fp.Reportf(num.value.Pos(), "NumCellFeatures must be len(CellFeatureNames), not an independent constant")
	}

	if no, nn := fp.vars["neighborOffsets"], fp.vars["neighborNames"]; no != nil && nn != nil {
		lo, okO := fp.lenOf(no.name)
		ln, okN := fp.lenOf(nn.name)
		if okO && okN && lo != ln {
			fp.Reportf(nn.value.Pos(), "neighborNames has %d entries but neighborOffsets has %d; the neighbor profile features would mislabel", ln, lo)
		}
	}

	env := map[string]int{"NumCellFeatures": n, "NumLineFeatures": -1}
	if ln := fp.vars["LineFeatureNames"]; ln != nil {
		if lit, ok := ln.value.(*ast.CompositeLit); ok {
			env["NumLineFeatures"] = len(lit.Elts)
		}
	}
	fp.checkPartitionEnv("cell feature groups",
		[]string{"CellContentFeatures", "CellLineProbFeatures", "CellContextualFeatures", "CellComputationalFeatures"},
		n, func(i int) string { return fmt.Sprintf("#%d", i) }, env)

	if fn := fp.funcs["CellFeatures"]; fn != nil && fn.Body != nil {
		fp.checkCellExtractor(fn, n)
	}
}

// cellNameCount statically counts the entries of CellFeatureNames: either a
// direct composite literal, or a call to a builder function whose body is a
// sequence of literal appends (possibly inside ranges over fixed-length
// arrays).
func (fp *parityPass) cellNameCount(init ast.Expr) (int, bool) {
	if lit, ok := init.(*ast.CompositeLit); ok {
		return len(lit.Elts), true
	}
	call, ok := init.(*ast.CallExpr)
	if !ok {
		fp.Reportf(init.Pos(), "CellFeatureNames must be a composite literal or a call to a local builder function")
		return 0, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fp.funcs[id.Name] == nil {
		fp.Reportf(init.Pos(), "CellFeatureNames builder must be a package-local function")
		return 0, false
	}
	fn := fp.funcs[id.Name]
	count := 0
	ok = fp.countAppends(fn.Body.List, 1, &count)
	if !ok {
		return 0, false
	}
	return count, true
}

// countAppends walks builder statements, adding (multiplier × appended
// element count) for every names/append operation. It understands
//
//	names := []string{...}
//	names = append(names, a, b, ...)
//	for ... range <fixed-length array> { names = append(names, ...) }
//
// and reports anything else that could change the count.
func (fp *parityPass) countAppends(stmts []ast.Stmt, mult int, count *int) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				continue
			}
			switch rhs := s.Rhs[0].(type) {
			case *ast.CompositeLit:
				if isStringSlice(fp.TypeOf(rhs)) {
					*count += mult * len(rhs.Elts)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
					if b, ok := fp.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						*count += mult * (len(rhs.Args) - 1)
					}
				}
			}
		case *ast.RangeStmt:
			l, ok := fp.lenOf(s.X)
			if !ok {
				fp.Reportf(s.Pos(), "cannot determine the length of this range in the CellFeatureNames builder; use a fixed-size array so the feature count stays statically checkable")
				return false
			}
			if !fp.countAppends(s.Body.List, mult*l, count) {
				return false
			}
		case *ast.ReturnStmt, *ast.DeclStmt, *ast.ExprStmt:
			// no effect on the count
		}
	}
	return true
}

// checkCellExtractor abstractly interprets the cursor-style vector fill of
// CellFeatures: starting at the statement `i := 0`, it tracks the cursor
// through i++, i += k, and ranges over fixed-length arrays, recording every
// slot written via f[i] or copy(f[i:i+k], ...). The written set must be
// exactly [0, n).
func (fp *parityPass) checkCellExtractor(fn *ast.FuncDecl, n int) {
	block, start, cursor := findCursorInit(fn.Body)
	if block == nil {
		return // no cursor pattern; nothing to interpret
	}
	interp := &cellInterp{fp: fp, cursor: cursor, written: map[int]bool{}}
	if !interp.run(block.List[start+1:]) {
		fp.Reportf(fn.Pos(), "CellFeatures vector fill is too dynamic to verify: %s", interp.failure)
		return
	}
	var missing, excess []int
	for i := 0; i < n; i++ {
		if !interp.written[i] {
			missing = append(missing, i)
		}
	}
	for i := range interp.written {
		if i < 0 || i >= n {
			excess = append(excess, i)
		}
	}
	sort.Ints(excess)
	if len(missing) > 0 {
		fp.Reportf(fn.Pos(), "CellFeatures never fills slot(s) %v of the %d named cell features", missing, n)
	}
	if len(excess) > 0 {
		fp.Reportf(fn.Pos(), "CellFeatures writes slot(s) %v beyond the %d named cell features", excess, n)
	}
}

// findCursorInit locates the innermost block containing `i := 0` (any
// identifier name) used as a vector cursor, returning the block, the index
// of the init statement, and the cursor object.
func findCursorInit(body *ast.BlockStmt) (block *ast.BlockStmt, idx int, cursor *ast.Object) {
	ast.Inspect(body, func(node ast.Node) bool {
		if block != nil {
			return false
		}
		b, ok := node.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for si, stmt := range b.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			if lit, ok := as.Rhs[0].(*ast.BasicLit); !ok || lit.Value != "0" {
				continue
			}
			// Require that the variable is used as an index later in the
			// block, distinguishing the cursor from other zero-initialized
			// locals.
			if id.Obj != nil && usedAsIndex(b.List[si+1:], id.Obj) {
				block, idx, cursor = b, si, id.Obj
				return false
			}
		}
		return true
	})
	return block, idx, cursor
}

func usedAsIndex(stmts []ast.Stmt, obj *ast.Object) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && id.Obj == obj {
				found = true
				return false
			}
			return true
		})
	}
	return found
}

// cellInterp is the abstract interpreter for the cursor-fill pattern.
type cellInterp struct {
	fp      *parityPass
	cursor  *ast.Object
	i       int
	written map[int]bool
	failure string
}

func (ci *cellInterp) fail(format string, args ...any) bool {
	if ci.failure == "" {
		ci.failure = fmt.Sprintf(format, args...)
	}
	return false
}

func (ci *cellInterp) run(stmts []ast.Stmt) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if ci.isCursor(s.X) {
				if s.Tok == token.INC {
					ci.i++
				} else {
					ci.i--
				}
				continue
			}
		case *ast.AssignStmt:
			if !ci.runAssign(s) {
				return false
			}
		case *ast.IfStmt:
			// Branches may write slots but must not move the cursor.
			if ci.mutatesCursor(s) {
				return ci.fail("cursor mutated inside an if statement at %s", ci.fp.Fset.Position(s.Pos()))
			}
			ci.recordWrites(s)
		case *ast.RangeStmt:
			l, ok := ci.fp.lenOf(s.X)
			if !ok {
				return ci.fail("range over unknown-length value at %s", ci.fp.Fset.Position(s.Pos()))
			}
			for k := 0; k < l; k++ {
				if !ci.run(s.Body.List) {
					return false
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if !ci.runCopy(call) {
					return false
				}
			}
		case *ast.DeclStmt, *ast.BlockStmt:
			if b, ok := stmt.(*ast.BlockStmt); ok {
				if !ci.run(b.List) {
					return false
				}
			}
		default:
			if ci.mutatesCursor(stmt) {
				return ci.fail("cursor mutated in unsupported statement at %s", ci.fp.Fset.Position(stmt.Pos()))
			}
		}
	}
	return true
}

func (ci *cellInterp) runAssign(s *ast.AssignStmt) bool {
	// Cursor arithmetic: i += k, i = i + k.
	if len(s.Lhs) == 1 && ci.isCursor(s.Lhs[0]) {
		switch s.Tok {
		case token.ADD_ASSIGN:
			k, ok := ci.fp.constInt(s.Rhs[0], nil)
			if !ok {
				return ci.fail("non-constant cursor increment at %s", ci.fp.Fset.Position(s.Pos()))
			}
			ci.i += k
			return true
		case token.ASSIGN, token.DEFINE:
			return ci.fail("cursor reassigned at %s", ci.fp.Fset.Position(s.Pos()))
		}
	}
	// Slot writes: f[i] = ...
	for _, lhs := range s.Lhs {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			continue
		}
		if ci.isCursor(ix.Index) {
			ci.written[ci.i] = true
		}
	}
	return true
}

// runCopy records copy(f[i:i+k], ...) as writes to slots [i, i+k).
func (ci *cellInterp) runCopy(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 2 {
		return true
	}
	if b, ok := ci.fp.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "copy" {
		return true
	}
	sl, ok := call.Args[0].(*ast.SliceExpr)
	if !ok {
		return true
	}
	lo, okLo := ci.evalCursorExpr(sl.Low)
	hi, okHi := ci.evalCursorExpr(sl.High)
	if !okLo || !okHi {
		return ci.fail("copy destination bounds not cursor-resolvable at %s", ci.fp.Fset.Position(call.Pos()))
	}
	for k := lo; k < hi; k++ {
		ci.written[k] = true
	}
	return true
}

// recordWrites collects f[i] writes (and copies) from a statement tree
// whose cursor value is fixed, e.g. the branches of an if.
func (ci *cellInterp) recordWrites(root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ci.runAssign(n)
		case *ast.CallExpr:
			ci.runCopy(n)
		}
		return true
	})
}

func (ci *cellInterp) mutatesCursor(root ast.Node) bool {
	mutated := false
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if ci.isCursor(n.X) {
				mutated = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ci.isCursor(lhs) {
					mutated = true
				}
			}
		}
		return !mutated
	})
	return mutated
}

func (ci *cellInterp) isCursor(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Obj == ci.cursor
}

// evalCursorExpr evaluates i, i+k, or a constant against the current
// cursor value.
func (ci *cellInterp) evalCursorExpr(e ast.Expr) (int, bool) {
	if e == nil {
		return 0, false
	}
	e = ast.Unparen(e)
	if ci.isCursor(e) {
		return ci.i, true
	}
	if v, ok := ci.fp.constInt(e, nil); ok {
		return v, true
	}
	if bin, ok := e.(*ast.BinaryExpr); ok {
		x, okX := ci.evalCursorExpr(bin.X)
		y, okY := ci.evalCursorExpr(bin.Y)
		if okX && okY {
			switch bin.Op {
			case token.ADD:
				return x + y, true
			case token.SUB:
				return x - y, true
			}
		}
	}
	return 0, false
}

// ---- shared helpers ----

// checkPartition verifies that the named index-set vars jointly cover
// [0, n) exactly once, reporting gaps, overlaps, and out-of-range slots.
func (fp *parityPass) checkPartition(what string, groupNames []string, n int, nameOf func(int) string) {
	fp.checkPartitionEnv(what, groupNames, n, nameOf, map[string]int{})
}

func (fp *parityPass) checkPartitionEnv(what string, groupNames []string, n int, nameOf func(int) string, env map[string]int) {
	owner := map[int]string{}
	found := 0
	var pos token.Pos
	for _, g := range groupNames {
		decl := fp.vars[g]
		if decl == nil {
			continue
		}
		found++
		pos = decl.value.Pos()
		idxs, ok := fp.indexSet(decl.value, env)
		if !ok {
			fp.Reportf(decl.value.Pos(), "%s must be an []int literal or indexRange(lo, hi) call with statically known bounds", g)
			continue
		}
		for _, i := range idxs {
			if prev, dup := owner[i]; dup {
				fp.Reportf(decl.value.Pos(), "%s: slot %d (%s) appears in both %s and %s", what, i, nameOf(i), prev, g)
				continue
			}
			owner[i] = g
			if i < 0 || i >= n {
				fp.Reportf(decl.value.Pos(), "%s: %s contains slot %d but the name list has only %d entries", what, g, i, n)
			}
		}
	}
	if found == 0 {
		return
	}
	var missing []string
	for i := 0; i < n; i++ {
		if _, ok := owner[i]; !ok {
			missing = append(missing, fmt.Sprintf("%d (%s)", i, nameOf(i)))
		}
	}
	if len(missing) > 0 {
		fp.Reportf(pos, "%s: slot(s) %s belong to no group; every named feature must be assigned to exactly one ablation group", what, strings.Join(missing, ", "))
	}
}

// indexSet evaluates a group initializer into its index list: either an
// []int composite literal or an indexRange(lo, hi) call.
func (fp *parityPass) indexSet(e ast.Expr, env map[string]int) ([]int, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		var out []int
		for _, el := range e.Elts {
			v, ok := fp.constInt(el, env)
			if !ok {
				return nil, false
			}
			out = append(out, v)
		}
		return out, true
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "indexRange" || len(e.Args) != 2 {
			return nil, false
		}
		lo, okLo := fp.constInt(e.Args[0], env)
		hi, okHi := fp.constInt(e.Args[1], env)
		if !okLo || !okHi || hi < lo {
			return nil, false
		}
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out, true
	}
	return nil, false
}

// constInt evaluates an expression to an int using, in order: the type
// checker's constant folding, the supplied environment of known vars, len()
// of fixed-size values, and +,-,* arithmetic over those.
func (fp *parityPass) constInt(e ast.Expr, env map[string]int) (int, bool) {
	e = ast.Unparen(e)
	if tv, ok := fp.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact {
			return int(v), true
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := env[e.Name]; ok && v >= 0 {
			return v, true
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) == 1 {
			if b, ok := fp.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "len" {
				return fp.lenOf(e.Args[0])
			}
		}
	case *ast.BinaryExpr:
		x, okX := fp.constInt(e.X, env)
		y, okY := fp.constInt(e.Y, env)
		if okX && okY {
			switch e.Op {
			case token.ADD:
				return x + y, true
			case token.SUB:
				return x - y, true
			case token.MUL:
				return x * y, true
			}
		}
	}
	return 0, false
}

// lenOf statically determines the length of an expression: fixed-size
// arrays via the type system, otherwise package-level slice vars whose
// initializer is a composite literal (looked up in this package or any
// loaded dependency).
func (fp *parityPass) lenOf(e ast.Expr) (int, bool) {
	e = ast.Unparen(e)
	if t := fp.TypeOf(e); t != nil {
		if arr, ok := t.Underlying().(*types.Array); ok {
			return int(arr.Len()), true
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			if arr, ok := ptr.Elem().Underlying().(*types.Array); ok {
				return int(arr.Len()), true
			}
		}
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		return len(e.Elts), true
	case *ast.Ident:
		if d := fp.vars[e.Name]; d != nil {
			if lit, ok := d.value.(*ast.CompositeLit); ok {
				return len(lit.Elts), true
			}
		}
	case *ast.SelectorExpr:
		obj := fp.Pkg.Info.Uses[e.Sel]
		if obj == nil || obj.Pkg() == nil {
			return 0, false
		}
		dep := fp.Loader.Loaded(obj.Pkg().Path())
		if dep == nil {
			return 0, false
		}
		if lit := pkgVarLiteral(dep, obj.Name()); lit != nil {
			return len(lit.Elts), true
		}
	}
	return 0, false
}

// pkgVarLiteral finds the composite-literal initializer of a package-level
// var by name in a loaded package.
func pkgVarLiteral(pkg *Package, name string) *ast.CompositeLit {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name == name && i < len(vs.Values) {
						if lit, ok := vs.Values[i].(*ast.CompositeLit); ok {
							return lit
						}
					}
				}
			}
		}
	}
	return nil
}

// isLenOf reports whether e is the expression len(<ident named target>).
func isLenOf(e ast.Expr, target string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "len" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && arg.Name == target
}

func isFloatSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return isFloat(sl.Elem())
}

func isStringSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

package modelcheck

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"strudel"
	"strudel/internal/ml/forest"
)

// modelsDir is the shared corrupt/valid artifact corpus also used by
// forest's load tests.
const modelsDir = "../../../testdata/models"

func TestVerifyCorruptCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(modelsDir, "corrupt_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("corrupt corpus too small: %d files", len(paths))
	}
	for _, p := range paths {
		findings := VerifyFile(p)
		if len(findings) == 0 {
			t.Errorf("%s: corrupt artifact verified clean", filepath.Base(p))
			continue
		}
		for _, f := range findings {
			if f.Message == "" {
				t.Errorf("%s: finding with empty message", filepath.Base(p))
			}
		}
	}
}

func TestVerifyValidCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(modelsDir, "valid_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no valid artifacts in corpus")
	}
	for _, p := range paths {
		if findings := VerifyFile(p); len(findings) != 0 {
			t.Errorf("%s: valid artifact flagged: %v", filepath.Base(p), findings)
		}
	}
}

func TestVerifyModelFileShapePaths(t *testing.T) {
	// A full model file whose embedded line forest has a feature index out
	// of range: the finding must locate the violation at line.Forest.
	corrupt := `{
		"version": 1,
		"line": {
			"Forest": {
				"trees": [{"nodes": [{"f": 7, "t": 0.5, "l": 1, "r": 2},
					{"p": [1, 0]}, {"p": [0, 1]}], "num_classes": 2}],
				"num_classes": 2,
				"num_features": 3
			}
		}
	}`
	path := writeTemp(t, "model_bad_line.json", corrupt)
	findings := VerifyFile(path)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if findings[0].Path != "line.Forest" {
		t.Errorf("finding path = %q, want line.Forest", findings[0].Path)
	}
	if !strings.Contains(findings[0].Message, "feature") {
		t.Errorf("finding message %q does not name the feature-range invariant", findings[0].Message)
	}
}

func TestVerifyModelFileMissingLine(t *testing.T) {
	path := writeTemp(t, "model_no_line.json", `{"version": 1, "cell": null, "line": null}`)
	findings := VerifyFile(path)
	if len(findings) == 0 {
		t.Fatal("model file without a line model verified clean")
	}
	if findings[0].Path != "line" {
		t.Errorf("finding path = %q, want line", findings[0].Path)
	}
}

func TestVerifyUnrecognizedShape(t *testing.T) {
	path := writeTemp(t, "not_a_model.json", `{"rows": [1, 2, 3]}`)
	findings := VerifyFile(path)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "unrecognized") {
		t.Fatalf("got %v, want one unrecognized-shape finding", findings)
	}
}

func TestVerifyUnreadableFile(t *testing.T) {
	findings := VerifyFile(filepath.Join(t.TempDir(), "absent.json"))
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "unreadable") {
		t.Fatalf("got %v, want one unreadable finding", findings)
	}
}

func TestVerifyGlobs(t *testing.T) {
	findings, err := VerifyGlobs([]string{filepath.Join(modelsDir, "corrupt_*.json")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("corrupt glob produced no findings")
	}
	// Findings must come back sorted by file for stable CI output.
	for i := 1; i < len(findings); i++ {
		if findings[i].File < findings[i-1].File {
			t.Fatalf("findings out of order: %s after %s", findings[i].File, findings[i-1].File)
		}
	}
}

func TestVerifyGlobsRejectsEmptyMatch(t *testing.T) {
	if _, err := VerifyGlobs([]string{filepath.Join(modelsDir, "no_such_*.json")}); err == nil {
		t.Fatal("empty glob match did not error")
	}
}

func TestVerifyBinaryModelArtifact(t *testing.T) {
	files, err := strudel.GenerateCorpus("saus", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := strudel.Train(files, strudel.TrainOptions{Trees: 3, Seed: 1, MaxCellsPerFile: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf, strudel.FormatBinary); err != nil {
		t.Fatal(err)
	}
	good := writeTemp(t, "model.bin", buf.String())
	if findings := VerifyFile(good); len(findings) != 0 {
		t.Errorf("valid binary model flagged: %v", findings)
	}

	// Flip the first forest blob's magic byte: the artifact must be
	// rejected with a finding, not verified clean or panicked on.
	data := append([]byte(nil), buf.Bytes()...)
	headerLen := binary.LittleEndian.Uint32(data[8:12])
	data[12+headerLen] ^= 0xFF
	bad := writeTemp(t, "model_bad.bin", string(data))
	findings := VerifyFile(bad)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "invalid binary model artifact") {
		t.Fatalf("got %v, want one invalid-binary-model finding", findings)
	}
}

func TestVerifyBinaryForestArtifact(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}, {0.2, 0.8}, {0.9, 0.1}}
	y := []int{0, 1, 0, 1, 0, 1}
	f, err := forest.Fit(X, y, 2, forest.Options{NumTrees: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := writeTemp(t, "forest.bin", buf.String())
	if findings := VerifyFile(good); len(findings) != 0 {
		t.Errorf("valid binary forest flagged: %v", findings)
	}

	truncated := writeTemp(t, "forest_trunc.bin", buf.String()[:buf.Len()/2])
	findings := VerifyFile(truncated)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "invalid binary forest artifact") {
		t.Fatalf("got %v, want one invalid-binary-forest finding", findings)
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Package modelcheck statically verifies serialized model artifacts — the
// forest/model files strudel trains and ships, in either the JSON
// interchange encoding or the binary cold-start encoding — against the
// structural invariants prediction relies on: split feature indices inside
// [0, NumFeats), class dimensions matching NumClasses, finite thresholds,
// leaf probability vectors that are finite, non-negative, and sum to
// 1±1e-9, and Left/Right links forming a single acyclic, fully reachable
// binary tree per ensemble member.
//
// It is the artifact-side counterpart of the code-side analyzers: just as
// dialect detection scores a parse by the structural consistency of the
// resulting table, a model file is scored by the structural consistency of
// the forest it claims to encode — before it gets a chance to mispredict
// silently or panic at first use. The same invariants run at load time via
// forest.Load / (*Forest).Validate; this package adds the offline driver
// (strudel-lint -models) that names every violated invariant with its path
// inside the file.
//
// Two artifact shapes are recognized: a bare forest (the forest.Save
// encoding, top-level "trees") and a full strudel model file (top-level
// "line"/"cell", as written by Model.Save).
package modelcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"strudel"
	"strudel/internal/core"
	"strudel/internal/ml/forest"
)

// A Finding is one verification failure in one artifact file.
type Finding struct {
	// File is the artifact path as given by the caller.
	File string `json:"file"`
	// Path locates the violation inside the artifact (e.g.
	// "line.Forest: trees[3]: nodes[7]"); empty for file-level failures
	// such as undecodable JSON.
	Path string `json:"path,omitempty"`
	// Message names the violated invariant.
	Message string `json:"message"`
}

func (f Finding) String() string {
	if f.Path == "" {
		return fmt.Sprintf("%s: %s", f.File, f.Message)
	}
	return fmt.Sprintf("%s: %s: %s", f.File, f.Path, f.Message)
}

// artifactProbe sniffs which shape a JSON artifact has without committing
// to a full decode.
type artifactProbe struct {
	Trees json.RawMessage `json:"trees"`
	Line  json.RawMessage `json:"line"`
	Cell  json.RawMessage `json:"cell"`
}

// modelFile mirrors the root package's (unexported) on-disk model format.
type modelFile struct {
	Version int             `json:"version"`
	Line    *core.LineModel `json:"line"`
	Cell    *core.CellModel `json:"cell"`
}

// VerifyFile verifies one artifact file and returns its findings (empty
// means the artifact is structurally sound).
func VerifyFile(path string) []Finding {
	data, err := os.ReadFile(path)
	if err != nil {
		return []Finding{{File: path, Message: fmt.Sprintf("unreadable: %v", err)}}
	}
	return verifyBytes(path, data)
}

func verifyBytes(path string, data []byte) []Finding {
	// Binary artifacts announce themselves with a 4-byte magic (JSON
	// cannot: it opens with '{'). Both binary decoders run the same
	// structural verifier the JSON shapes get below, so decoding IS the
	// verification; the decode error names the violated invariant.
	if len(data) >= 4 {
		switch [4]byte(data[:4]) {
		case forest.ForestMagic:
			f, err := forest.DecodeBinary(bytes.NewReader(data))
			if err != nil {
				return []Finding{{File: path, Message: fmt.Sprintf("invalid binary forest artifact: %v", err)}}
			}
			return verifyForest(path, "", f)
		case strudel.ModelMagic:
			if _, err := strudel.LoadModel(bytes.NewReader(data)); err != nil {
				return []Finding{{File: path, Message: fmt.Sprintf("invalid binary model artifact: %v", err)}}
			}
			return nil
		}
	}
	var probe artifactProbe
	if err := json.Unmarshal(data, &probe); err != nil {
		return []Finding{{File: path, Message: fmt.Sprintf("not a JSON model artifact: %v", err)}}
	}
	switch {
	case probe.Trees != nil:
		var f forest.Forest
		if err := json.Unmarshal(data, &f); err != nil {
			return []Finding{{File: path, Message: fmt.Sprintf("not a forest artifact: %v", err)}}
		}
		return verifyForest(path, "", &f)
	case probe.Line != nil || probe.Cell != nil:
		var mf modelFile
		if err := json.Unmarshal(data, &mf); err != nil {
			return []Finding{{File: path, Message: fmt.Sprintf("not a model artifact: %v", err)}}
		}
		return verifyModelFile(path, &mf)
	default:
		return []Finding{{File: path, Message: "unrecognized artifact shape: neither a forest (trees) nor a model file (line/cell)"}}
	}
}

// verifyModelFile checks every forest embedded in a full model file.
func verifyModelFile(path string, mf *modelFile) []Finding {
	var out []Finding
	if mf.Line == nil {
		out = append(out, Finding{File: path, Path: "line", Message: "model file has no line model"})
	} else if mf.Line.Forest == nil {
		out = append(out, Finding{File: path, Path: "line.Forest", Message: "line model has no forest"})
	} else {
		out = append(out, verifyForest(path, "line.Forest", mf.Line.Forest)...)
	}
	if mf.Cell != nil {
		if mf.Cell.Forest == nil {
			out = append(out, Finding{File: path, Path: "cell.Forest", Message: "cell model has no forest"})
		} else {
			out = append(out, verifyForest(path, "cell.Forest", mf.Cell.Forest)...)
		}
		if mf.Cell.Column != nil {
			if mf.Cell.Column.Forest == nil {
				out = append(out, Finding{File: path, Path: "cell.Column.Forest", Message: "column model has no forest"})
			} else {
				out = append(out, verifyForest(path, "cell.Column.Forest", mf.Cell.Column.Forest)...)
			}
		}
	}
	return out
}

func verifyForest(file, prefix string, f *forest.Forest) []Finding {
	err := f.Validate()
	if err == nil {
		return nil
	}
	return []Finding{{File: file, Path: joinPath(prefix, ""), Message: err.Error()}}
}

func joinPath(prefix, rest string) string {
	switch {
	case prefix == "":
		return rest
	case rest == "":
		return prefix
	default:
		return prefix + ": " + rest
	}
}

// VerifyGlobs expands the given glob patterns (a literal path is its own
// match), verifies every matching file in sorted order, and returns the
// combined findings. A pattern that matches nothing is an error: a CI step
// silently verifying zero artifacts would be worse than failing.
func VerifyGlobs(patterns []string) ([]Finding, error) {
	seen := map[string]bool{}
	var files []string
	for _, pat := range patterns {
		matches, err := filepath.Glob(pat)
		if err != nil {
			return nil, fmt.Errorf("modelcheck: bad pattern %q: %w", pat, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("modelcheck: no artifacts match %q", pat)
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				files = append(files, m)
			}
		}
	}
	sort.Strings(files)
	var out []Finding
	for _, f := range files {
		out = append(out, VerifyFile(f)...)
	}
	return out, nil
}

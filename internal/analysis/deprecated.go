package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deprecated flags module-internal calls to module functions whose doc
// comment carries a "Deprecated:" paragraph (the standard Go convention).
// Such wrappers exist only for external source compatibility; inside the
// module every caller must use the replacement the note names, so the old
// spelling can eventually be dropped without a sweep. Calls made from a
// function that is itself deprecated are exempt — a compatibility shim may
// delegate to another one.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "flags module-internal calls to functions documented as Deprecated:",
	Run:  runDeprecated,
}

func runDeprecated(pass *Pass) {
	// notes caches, per declaring package, which functions are deprecated
	// and why, so a package with many call sites is scanned once.
	notes := map[*Package]map[*types.Func]string{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := deprecationNote(fd); ok {
				continue // deprecated shims may call each other
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Pkg.Info, call)
				if fn == nil {
					return true
				}
				note, ok := pass.deprecationOf(fn, notes)
				if !ok {
					return true
				}
				pass.Reportf(call.Pos(), "call to deprecated %s (%s)", fn.Name(), note)
				return true
			})
		}
	}
}

// deprecationOf reports whether fn is a module function documented as
// deprecated, returning the first line of the deprecation note. Functions
// outside the module (the standard library) are never flagged: the check
// enforces this module's own migration contract, not Go's.
func (p *Pass) deprecationOf(fn *types.Func, notes map[*Package]map[*types.Func]string) (string, bool) {
	path := pkgOfFunc(fn)
	if p.Loader == nil || path == "" {
		return "", false
	}
	if path != p.Loader.ModulePath && !strings.HasPrefix(path, p.Loader.ModulePath+"/") {
		return "", false
	}
	declPkg := p.Pkg
	if path != p.Pkg.Path {
		// Dependencies were loaded (and memoized) while type-checking this
		// package, so the lookup never forces a new load.
		if declPkg = p.Loader.Loaded(path); declPkg == nil {
			return "", false
		}
	}
	m, ok := notes[declPkg]
	if !ok {
		m = map[*types.Func]string{}
		for _, file := range declPkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if note, ok := deprecationNote(fd); ok {
					if obj, ok := declPkg.Info.Defs[fd.Name].(*types.Func); ok {
						m[obj] = note
					}
				}
			}
		}
		notes[declPkg] = m
	}
	note, ok := m[fn]
	return note, ok
}

// deprecationNote extracts the first line of a FuncDecl's "Deprecated:"
// paragraph, following the godoc convention of a comment line starting with
// that marker.
func deprecationNote(fd *ast.FuncDecl) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(line, "Deprecated:") {
			return line, true
		}
	}
	return "", false
}

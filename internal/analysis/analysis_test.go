package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureLoader returns a loader rooted at the fixture pseudo-module.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, "fixture")
}

// wantRE marks fixture lines that expect a diagnostic of the named check.
var wantRE = regexp.MustCompile(`// want (\w+)`)

// expectedFindings scans a fixture package directory for `// want <check>`
// markers and returns the expected (file:line, check) set.
func expectedFindings(t *testing.T, l *Loader, importPath string) map[string]bool {
	t.Helper()
	dir := filepath.Join(l.ModuleRoot, strings.TrimPrefix(importPath, "fixture/"))
	names, err := goFilesIn(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, name := range names {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRE.FindStringSubmatch(sc.Text()); m != nil {
				want[fmt.Sprintf("%s:%d %s", path, line, m[1])] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// checkFixture runs analyzers over one fixture package and requires the
// diagnostics to match the // want markers exactly.
func checkFixture(t *testing.T, importPath string, analyzers []*Analyzer) {
	t.Helper()
	l := fixtureLoader(t)
	diags, err := Run(l, []string{importPath}, analyzers)
	if err != nil {
		t.Fatalf("Run(%s): %v", importPath, err)
	}
	want := expectedFindings(t, l, importPath)
	got := map[string]bool{}
	for _, d := range diags {
		got[fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Check)] = true
	}
	for key := range want {
		if !got[key] {
			t.Errorf("missing expected finding at %s", key)
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d %s", d.File, d.Line, d.Check)
		if !want[key] {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

func TestNondeterminismFixture(t *testing.T) {
	checkFixture(t, "fixture/nondet", []*Analyzer{Nondeterminism})
}

func TestNondeterminismExemptsMainPackages(t *testing.T) {
	checkFixture(t, "fixture/nondetmain", []*Analyzer{Nondeterminism})
}

func TestFloatCmpFixture(t *testing.T) {
	checkFixture(t, "fixture/floatcmp", []*Analyzer{FloatCmp})
}

func TestErrCheckFixture(t *testing.T) {
	checkFixture(t, "fixture/internal/errcheck", []*Analyzer{ErrCheck})
}

func TestErrCheckScopedToInternalAndCmd(t *testing.T) {
	checkFixture(t, "fixture/errcheckout", []*Analyzer{ErrCheck})
}

func TestPanicPathFixture(t *testing.T) {
	checkFixture(t, "fixture/panicpath", []*Analyzer{PanicPath})
}

func TestPanicPathExemptsMainPackages(t *testing.T) {
	checkFixture(t, "fixture/panicpathmain", []*Analyzer{PanicPath})
}

func TestLockCheckFixture(t *testing.T) {
	checkFixture(t, "fixture/lockcheck", []*Analyzer{LockCheck})
}

func TestGoroutineCaptureFixture(t *testing.T) {
	checkFixture(t, "fixture/gocapture", []*Analyzer{GoroutineCapture})
}

func TestSharedWriteFixture(t *testing.T) {
	checkFixture(t, "fixture/sharedwrite", []*Analyzer{SharedWrite})
}

func TestSharedWriteExemptsMainPackages(t *testing.T) {
	checkFixture(t, "fixture/sharedwritemain", []*Analyzer{SharedWrite})
}

func TestLockCheckCrossPackageFixture(t *testing.T) {
	checkFixture(t, "fixture/lockxp", []*Analyzer{LockCheck})
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, "fixture/ctxflow", []*Analyzer{CtxFlow})
}

func TestCtxFlowMainPackageFixture(t *testing.T) {
	checkFixture(t, "fixture/ctxflowmain", []*Analyzer{CtxFlow})
}

func TestErrFlowFixture(t *testing.T) {
	checkFixture(t, "fixture/errflow", []*Analyzer{ErrFlow})
}

func TestRescLeakFixture(t *testing.T) {
	checkFixture(t, "fixture/rescleak", []*Analyzer{RescLeak})
}

func TestRescLeakCrossPackageFixture(t *testing.T) {
	checkFixture(t, "fixture/resxp", []*Analyzer{RescLeak})
}

func TestRescLeakHelperPackageIsClean(t *testing.T) {
	checkFixture(t, "fixture/ressub", []*Analyzer{RescLeak})
}

func TestLostCancelFixture(t *testing.T) {
	checkFixture(t, "fixture/lostcancel", []*Analyzer{LostCancel})
}

func TestGoroLeakFixture(t *testing.T) {
	checkFixture(t, "fixture/goroleak", []*Analyzer{GoroLeak})
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "fixture/hotingest", []*Analyzer{HotAlloc})
}

func TestPipelineFixtureIsClean(t *testing.T) {
	// The fixture worker pool itself must not trip the concurrency checks.
	checkFixture(t, "fixture/pipeline", []*Analyzer{LockCheck, GoroutineCapture, SharedWrite})
}

func TestDeprecatedFixture(t *testing.T) {
	checkFixture(t, "fixture/deprecated", []*Analyzer{Deprecated})
}

func TestDeprecatedCrossPackageFixture(t *testing.T) {
	checkFixture(t, "fixture/deprecatedx", []*Analyzer{Deprecated})
}

func TestFeatureParityCleanFixture(t *testing.T) {
	checkFixture(t, "fixture/paritygood", []*Analyzer{FeatureParity})
}

func TestFeatureParityCatchesDesyncedLineFeatures(t *testing.T) {
	checkFixture(t, "fixture/paritybad", []*Analyzer{FeatureParity})
}

func TestFeatureParityCatchesDesyncedCellFeatures(t *testing.T) {
	checkFixture(t, "fixture/paritybadcell", []*Analyzer{FeatureParity})
}

// TestIgnoreMechanics exercises the suppression layer itself: a valid
// directive silences its finding, while missing reasons, stale directives,
// and unknown check names are reported.
func TestIgnoreMechanics(t *testing.T) {
	l := fixtureLoader(t)
	diags, err := Run(l, []string{"fixture/ignores"}, All)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		if d.Check != "ignore" {
			t.Errorf("finding escaped suppression handling: %s", d)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d ignore findings (%v), want 3", len(msgs), msgs)
	}
	sort.Strings(msgs)
	for i, substr := range []string{"suppresses nothing", "unknown check", "needs a reason"} {
		if !strings.Contains(msgs[i], substr) {
			t.Errorf("ignore finding %d = %q, want substring %q", i, msgs[i], substr)
		}
	}
}

// TestNamesCoverNewChecks pins the registry: the stale-ignore detector and
// the -checks flag both resolve names through Lookup, so a check missing
// from the registry would silently break both.
func TestNamesCoverNewChecks(t *testing.T) {
	for _, name := range []string{"ctxflow", "errflow", "hotalloc", "lockcheck", "sharedwrite", "rescleak", "lostcancel", "goroleak"} {
		if Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil; stale-ignore detection and -checks cannot see it", name)
		}
	}
	if len(Names()) != len(All) {
		t.Errorf("Names() returned %d names for %d analyzers", len(Names()), len(All))
	}
}

// TestRealFeaturesPackageIsClean pins the repo's own invariant: the
// analyzers accept internal/features as-is. If this fails, either the
// features code or an analyzer regressed.
func TestRealFeaturesPackageIsClean(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	diags, err := Run(l, []string{modPath + "/internal/features"}, All)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "strudel" {
		t.Errorf("module path = %q, want strudel", path)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("module root %s has no go.mod: %v", root, err)
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand included testdata package %s", p)
		}
	}
	found := false
	for _, p := range paths {
		if p == "strudel/internal/analysis" {
			found = true
		}
	}
	if !found {
		t.Errorf("Expand(./...) from internal/analysis missed the package itself: %v", paths)
	}
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses one function declaration and returns its body.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry())
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f() { x := 1; _ = x }`))
	if len(c.Entry().Nodes) != 2 {
		t.Errorf("entry block has %d nodes, want 2", len(c.Entry().Nodes))
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable from entry")
	}
}

func TestCFGIfElseJoins(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) int {
		x := 0
		if b {
			x = 1
		} else {
			x = 2
		}
		return x
	}`))
	// Entry must branch two ways, and the exit must be reachable.
	if got := len(c.Entry().Succs); got != 2 {
		t.Errorf("condition block has %d successors, want 2", got)
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f() {
		for i := 0; i < 3; i++ {
			_ = i
		}
	}`))
	// Some block must have a successor with a smaller index (the back edge).
	hasBack := false
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != c.Exit {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("for loop produced no back edge")
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(xs []int) {
		for _, x := range xs {
			if x < 0 {
				continue
			}
			if x > 10 {
				break
			}
			_ = x
		}
	}`))
	if c.Hairy {
		t.Error("break/continue marked the function hairy")
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(m [][]int) {
	outer:
		for _, row := range m {
			for _, v := range row {
				if v == 0 {
					break outer
				}
				if v == 1 {
					continue outer
				}
			}
		}
	}`))
	if c.Hairy {
		t.Error("labeled break/continue marked the function hairy")
	}
	if !reachable(c)[c.Exit] {
		t.Error("exit unreachable")
	}
}

func TestCFGGotoIsHairy(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f() {
	top:
		if true {
			goto top
		}
	}`))
	if !c.Hairy {
		t.Error("goto did not mark the function hairy")
	}
}

func TestCFGSwitchFanOut(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(x int) int {
		switch x {
		case 1:
			return 1
		case 2:
			return 2
		}
		return 0
	}`))
	// No default: the dispatch block needs case+case+after = 3 successors.
	if got := len(c.Entry().Succs); got != 3 {
		t.Errorf("switch dispatch has %d successors, want 3", got)
	}
}

func TestCFGSelect(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(a, b chan int) int {
		select {
		case v := <-a:
			return v
		case v := <-b:
			return v
		}
	}`))
	if got := len(c.Entry().Succs); got != 2 {
		t.Errorf("select dispatch has %d successors, want 2", got)
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f() {
		defer one()
		if true {
			defer two()
		}
	}`))
	if len(c.Defers) != 2 {
		t.Errorf("recorded %d defers, want 2", len(c.Defers))
	}
}

// TestForwardFixpointOverLoop drives the dataflow solver directly: a fact
// introduced inside a conditional must degrade to FactMay at the join, and
// one introduced before a loop must stay FactMust throughout it.
func TestForwardFixpointOverLoop(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool, xs []int) {
		pre()
		if b {
			maybe()
		}
		for _, x := range xs {
			_ = x
		}
		post()
	}`))
	// Transfer: seeing a call to pre() sets fact "pre" Must; maybe() sets
	// "maybe" Must.
	setters := map[string]string{"pre": "pre", "maybe": "maybe"}
	in := c.Forward(func(blk *Block, facts Facts) Facts {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(nn ast.Node) bool {
				call, ok := nn.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok {
					if key, ok := setters[id.Name]; ok {
						facts[key] = FactMust
					}
				}
				return true
			})
		}
		return facts
	})
	exitIn, ok := in[c.Exit]
	if !ok {
		t.Fatal("exit has no incoming facts")
	}
	if exitIn["pre"] != FactMust {
		t.Errorf("fact pre = %v at exit, want FactMust", exitIn["pre"])
	}
	if exitIn["maybe"] != FactMay {
		t.Errorf("fact maybe = %v at exit, want FactMay", exitIn["maybe"])
	}
}

// TestCFGBranchSuccessors pins the Cond/TrueSucc/FalseSucc annotations the
// builder records for if conditions and for-loop heads: the successor ORDER
// in Succs differs between the two (the for head edges to after before
// body), so refinement clients must rely on the explicit fields.
func TestCFGBranchSuccessors(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) int {
		if b {
			return 1
		}
		for i := 0; i < 3; i++ {
			_ = i
		}
		return 0
	}`))
	branches := 0
	for _, blk := range c.Blocks {
		if blk.Cond == nil {
			continue
		}
		branches++
		if blk.TrueSucc == nil || blk.FalseSucc == nil {
			t.Fatalf("block %d has Cond but TrueSucc=%v FalseSucc=%v", blk.Index, blk.TrueSucc, blk.FalseSucc)
		}
		inSuccs := func(b *Block) bool {
			for _, s := range blk.Succs {
				if s == b {
					return true
				}
			}
			return false
		}
		if !inSuccs(blk.TrueSucc) || !inSuccs(blk.FalseSucc) {
			t.Errorf("block %d branch successors not in Succs", blk.Index)
		}
	}
	if branches != 2 {
		t.Errorf("recorded %d branch blocks, want 2 (if cond + for head)", branches)
	}
}

// TestForwardEdgesRefinement drives the per-edge refiner directly: a fact
// set before an if is deleted along the true edge only, so it must survive
// as FactMay at the join and the refiner must see both edges of the
// condition block.
func TestForwardEdgesRefinement(t *testing.T) {
	c := buildCFG(parseFunc(t, `func f(b bool) {
		pre()
		if b {
			inTrue()
		} else {
			inFalse()
		}
		post()
	}`))
	mark := func(blk *Block, facts Facts) Facts {
		for _, n := range blk.Nodes {
			ast.Inspect(n, func(nn ast.Node) bool {
				if call, ok := nn.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "pre" {
						facts["x"] = FactMust
					}
				}
				return true
			})
		}
		return facts
	}
	refined := 0
	in := c.ForwardEdges(mark, func(from, to *Block, f Facts) Facts {
		if from.Cond == nil {
			return f
		}
		refined++
		if to == from.TrueSucc {
			delete(f, "x")
		}
		return f
	})
	exitIn, ok := in[c.Exit]
	if !ok {
		t.Fatal("exit has no incoming facts")
	}
	if exitIn["x"] != FactMay {
		t.Errorf("fact x = %v at exit, want FactMay (deleted on the true edge only)", exitIn["x"])
	}
	if refined == 0 {
		t.Error("refiner never saw a condition edge")
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// PanicPath enforces the ingestion-hardening contract: library code must
// never panic on input it did not construct itself, because one poisoned
// file would take down a whole AnnotateAll batch (the recover barrier is a
// backstop, not a license). Binaries (package main) are exempt — their
// panics terminate only themselves. A panic guarding a genuine internal
// invariant may stay, suppressed with
//
//	//lint:ignore panicpath <why the value can never come from file input>
var PanicPath = &Analyzer{
	Name: "panicpath",
	Doc: "flags panic calls in library (non-main) packages; return a typed " +
		"error instead, or lint:ignore with an invariant argument",
	Run: runPanicPath,
}

func runPanicPath(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic in library code escapes to every caller; return a typed error (or lint:ignore with the invariant that makes this unreachable)")
			}
			return true
		})
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// Nondeterminism enforces the pipeline's reproducibility contract: library
// code (anything that is not a main package) must not read wall-clock time,
// must not draw from the process-global math/rand source, and must not feed
// map-iteration order into ordered output. Binaries (package main: cmd/ and
// examples/) are exempt — they may default to wall clock behind a flag.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "flags time.Now, global math/rand functions, and for-range over a " +
		"map whose body appends to a slice or prints, without a sort.* call " +
		"in the enclosing function",
	Run: runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		// Check each function body separately so the map-range rule can ask
		// "does the enclosing function sort?".
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFuncDeterminism(pass, fd.Body)
			}
		}
		// Package-level variable initializers sit outside any FuncDecl.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkNondetCall(pass, call)
				}
				return true
			})
		}
	}
}

// checkFuncDeterminism walks one function body, flagging nondeterministic
// calls and order-sensitive map iterations.
func checkFuncDeterminism(pass *Pass, body *ast.BlockStmt) {
	sorts := callsSort(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNondetCall(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n, sorts)
		}
		return true
	})
}

// checkNondetCall flags time.Now and the global math/rand functions.
func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return
	}
	if isPkgFunc(fn, "time", "Now") {
		pass.Reportf(call.Pos(), "time.Now in library code breaks reproducible output; inject a clock or accept a timestamp from the caller")
		return
	}
	if pkgOfFunc(fn) == "math/rand" || pkgOfFunc(fn) == "math/rand/v2" {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return // methods on *rand.Rand are fine: the source is owned
		}
		switch fn.Name() {
		case "New", "NewSource", "NewZipf":
			return // constructors; determinism depends on the seed fed in
		case "Seed":
			pass.Reportf(call.Pos(), "rand.Seed reseeds the shared global source; construct rand.New(rand.NewSource(seed)) instead")
		default:
			pass.Reportf(call.Pos(), "rand.%s draws from the process-global source; use a seeded *rand.Rand passed in by the caller", fn.Name())
		}
	}
}

// checkMapRange flags `for range m` over a map when the body feeds ordered
// output (slice appends or fmt printing) and the enclosing function never
// calls into package sort — the signature of map-order leaking out.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclosingSorts bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if enclosingSorts {
		return
	}
	reason := orderSensitiveUse(pass, rng.Body)
	if reason == "" {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order reaches ordered output (%s) and the enclosing function never sorts; sort the keys first", reason)
}

// orderSensitiveUse reports how a map-range body leaks iteration order into
// ordered output: appending to a slice or printing via fmt. An empty string
// means no order-sensitive use was found.
func orderSensitiveUse(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				reason = "append"
				return false
			}
		}
		if fn := calleeFunc(pass.Pkg.Info, call); pkgOfFunc(fn) == "fmt" {
			reason = "fmt." + fn.Name()
			return false
		}
		return true
	})
	return reason
}

// callsSort reports whether a function body contains any call into package
// sort (sort.Strings, sort.Slice, ...) or slices (slices.Sort*). One sort
// anywhere in the function is taken as evidence the author re-established
// order after collecting from the map.
func callsSort(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch pkgOfFunc(calleeFunc(pass.Pkg.Info, call)) {
		case "sort", "slices":
			found = true
			return false
		}
		return true
	})
	return found
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared resource-lifetime layer behind the rescleak and
// lostcancel analyzers: a must-release dataflow over the CFG engine plus
// module-wide ownership-transfer summaries memoized on the call graph,
// mirroring how lockcheck's interprocedural lock summaries work.
//
// The model: certain calls ACQUIRE a resource (os.Open, net.Listen,
// time.NewTimer, http.Get, context.WithCancel, ...) and bind it to a local
// variable, creating an obligation fact. The obligation is DISCHARGED by:
//
//   - calling the release protocol (Close, Stop, resp.Body.Close, cancel());
//   - deferring the release, directly or inside a deferred/async function
//     literal (credited at every exit, like lockcheck's conditional defers);
//   - returning the resource (ownership moves to the caller);
//   - storing it in a struct field that some module function releases
//     (a field with a reachable Close/Stop/invocation);
//   - sending it on a channel (ownership moves to the receiver);
//   - passing it to a function whose summary releases that parameter on
//     every path — computed transitively over the call graph — or to a
//     stdlib consumer that documents taking ownership ((*http.Server).Serve
//     closes its listener).
//
// An obligation still held on a path reaching the function's exit is
// reported at its acquisition site, naming the leaking return line and the
// first call the resource was passed to that did not take ownership.
//
// Error paths are handled with branch refinement (CFG.ForwardEdges): on the
// err != nil arm of the acquisition's paired error check the resource is
// nil and the obligation is deleted. A companion "pending" fact, cleared on
// the validated arm, keeps a later reuse of the same err variable from
// voiding earlier validated obligations.
//
// Known over-approximations, chosen to prefer missed leaks over false
// positives: a release inside ANY function literal is credited at every
// exit (the literal may never run); reassigning a resource variable before
// releasing it loses the first acquisition; a returned parameter counts as
// released in summaries.

// resKind classifies a tracked resource by its release protocol.
type resKind int

const (
	resFile     resKind = iota // *os.File → Close
	resListener                // net.Listener → Close
	resCloser                  // io.Closer-shaped values → Close (parameter tracking)
	resTimer                   // *time.Timer → Stop
	resTicker                  // *time.Ticker → Stop
	resResponse                // *http.Response → resp.Body.Close
	resCancel                  // context.CancelFunc → cancel()
)

// what names the resource in diagnostics.
func (k resKind) what() string {
	switch k {
	case resFile:
		return "*os.File"
	case resListener:
		return "net.Listener"
	case resCloser:
		return "io.Closer"
	case resTimer:
		return "*time.Timer"
	case resTicker:
		return "*time.Ticker"
	case resResponse:
		return "*http.Response"
	default:
		return "context.CancelFunc"
	}
}

// releaseHint names the release protocol in diagnostics.
func (k resKind) releaseHint() string {
	switch k {
	case resTimer, resTicker:
		return "Stop"
	case resResponse:
		return "Body.Close"
	case resCancel:
		return "call"
	default:
		return "Close"
	}
}

// resVerb is the method name that releases a resource of kind k; "()" means
// the value itself is invoked (cancel functions).
func resVerb(k resKind) string {
	switch k {
	case resTimer, resTicker:
		return "Stop"
	case resCancel:
		return "()"
	default:
		return "Close"
	}
}

// resAcq describes one recognized acquisition call: which result holds the
// resource, which (if any) holds the paired error.
type resAcq struct {
	kind   resKind
	resIdx int
	errIdx int // -1 when the call cannot fail
	name   string
}

// resAcquirer recognizes the stdlib calls that create release obligations.
func resAcquirer(fn *types.Func) (resAcq, bool) {
	if fn == nil || fn.Pkg() == nil {
		return resAcq{}, false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	full := pathBase(pkg) + "."
	if recv != "" {
		full += recv + "."
	}
	full += name

	switch {
	case pkg == "os" && recv == "" && (name == "Open" || name == "Create" || name == "OpenFile"):
		return resAcq{resFile, 0, 1, full}, true
	case pkg == "net" && recv == "" && name == "Listen":
		return resAcq{resListener, 0, 1, full}, true
	case pkg == "time" && recv == "" && name == "NewTimer":
		return resAcq{resTimer, 0, -1, full}, true
	case pkg == "time" && recv == "" && name == "NewTicker":
		return resAcq{resTicker, 0, -1, full}, true
	case pkg == "net/http" && recv == "" &&
		(name == "Get" || name == "Head" || name == "Post" || name == "PostForm"):
		return resAcq{resResponse, 0, 1, full}, true
	case pkg == "net/http" && recv == "Client" &&
		(name == "Do" || name == "Get" || name == "Head" || name == "Post" || name == "PostForm"):
		return resAcq{resResponse, 0, 1, full}, true
	case pkg == "context" && recv == "" &&
		(name == "WithCancel" || name == "WithTimeout" || name == "WithDeadline"):
		return resAcq{resCancel, 1, -1, full}, true
	case pkg == "os/signal" && recv == "" && name == "NotifyContext":
		return resAcq{resCancel, 1, -1, full}, true
	}
	return resAcq{}, false
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// releasableKind classifies a type as a trackable resource, for parameter
// summaries and field-store transfer.
func releasableKind(t types.Type) (resKind, bool) {
	if t == nil {
		return 0, false
	}
	if p, ok := t.(*types.Pointer); ok {
		n, ok := p.Elem().(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			return 0, false
		}
		switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
		case "os.File":
			return resFile, true
		case "time.Timer":
			return resTimer, true
		case "time.Ticker":
			return resTicker, true
		case "net/http.Response":
			return resResponse, true
		}
		return 0, false
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
		case "net.Listener":
			return resListener, true
		case "context.CancelFunc":
			return resCancel, true
		case "io.Closer", "io.ReadCloser", "io.WriteCloser", "io.ReadWriteCloser":
			return resCloser, true
		}
	}
	return 0, false
}

// resReleased returns the objects (locals, parameters, or struct fields)
// whose release protocol this call invokes: f.Close(), t.Stop(),
// resp.Body.Close(), cancel(), d.ln.Close(), s.cancel().
func resReleased(info *types.Info, call *ast.CallExpr) []types.Object {
	var out []types.Object
	add := func(o types.Object, verb string) {
		if o == nil {
			return
		}
		if k, ok := releasableKind(o.Type()); ok && resVerb(k) == verb {
			out = append(out, o)
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		add(info.Uses[fun], "()")
	case *ast.SelectorExpr:
		verb := fun.Sel.Name
		if verb != "Close" && verb != "Stop" {
			// s.cancel(): invoking a CancelFunc held in a field.
			add(info.Uses[fun.Sel], "()")
			return out
		}
		switch x := ast.Unparen(fun.X).(type) {
		case *ast.Ident:
			add(info.Uses[x], verb)
		case *ast.SelectorExpr:
			// d.ln.Close() releases the field ln; resp.Body.Close()
			// additionally discharges the response local resp.
			add(info.Uses[x.Sel], verb)
			if x.Sel.Name == "Body" {
				if inner, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					add(info.Uses[inner], verb)
				}
			}
		}
	}
	return out
}

// resStdlibConsumes reports whether the stdlib function fn takes ownership
// of its argIdx-th argument. (*http.Server).Serve and http.Serve close the
// listener they are handed.
func resStdlibConsumes(fn *types.Func, argIdx int) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" || argIdx != 0 {
		return false
	}
	return fn.Name() == "Serve" || fn.Name() == "ServeTLS"
}

// resSummaries records, per module function, the parameter indices it
// provably releases on every path (receiver excluded; indices are into
// Signature.Params, which call-site Args align with).
type resSummaries map[*types.Func]map[int]bool

// A resObligation is one tracked acquisition in the function under
// analysis.
type resObligation struct {
	key      string       // dataflow fact key; key+"?" is the pending companion
	obj      types.Object // variable holding the resource
	errObj   types.Object // paired error result, nil when infallible
	kind     resKind
	src      string // acquisition rendering, e.g. "os.Open"
	pos      token.Pos
	credited bool // released in a defer/goroutine/literal: discharged at every exit
	// noteName/notePos record the first call the resource was passed to
	// whose summary does NOT take ownership, for the diagnostic's witness
	// chain.
	noteName string
	notePos  token.Pos
}

// resEvent is one entry in a block's replay sequence.
type resEvent struct {
	acquire *resObligation
	del     []string
	ret     ast.Node // a ReturnStmt marking an exit, checked after del applies
}

// resTracker runs the must-release dataflow for one function. The analyzers
// seed it with the function's own acquisitions; the summary builder seeds
// it with one releasable parameter held at entry.
type resTracker struct {
	info   *types.Info
	fset   *token.FileSet
	sums   resSummaries
	fields map[types.Object]bool

	obs   []*resObligation
	byObj map[types.Object][]*resObligation
	byErr map[types.Object][]*resObligation
	acqAt map[ast.Node][]*resObligation
}

func newResTracker(info *types.Info, fset *token.FileSet, sums resSummaries, fields map[types.Object]bool) *resTracker {
	return &resTracker{
		info:   info,
		fset:   fset,
		sums:   sums,
		fields: fields,
		byObj:  map[types.Object][]*resObligation{},
		byErr:  map[types.Object][]*resObligation{},
		acqAt:  map[ast.Node][]*resObligation{},
	}
}

func (t *resTracker) addObligation(ob *resObligation) {
	ob.key = fmt.Sprintf("res:%d:%s", len(t.obs), ob.obj.Name())
	t.obs = append(t.obs, ob)
	t.byObj[ob.obj] = append(t.byObj[ob.obj], ob)
	if ob.errObj != nil {
		t.byErr[ob.errObj] = append(t.byErr[ob.errObj], ob)
	}
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// collectObligations finds acquisitions in body (function literals excluded
// — they are separate execution contexts with their own analysis). want
// filters by kind; report, when non-nil, receives immediate findings for
// blank-discarded resources.
func (t *resTracker) collectObligations(body ast.Node, want func(resKind) bool, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch s := nn.(type) {
		case *ast.AssignStmt:
			lhs, rhs = s.Lhs, s.Rhs
		case *ast.ValueSpec:
			lhs = make([]ast.Expr, len(s.Names))
			for i, n := range s.Names {
				lhs[i] = n
			}
			rhs = s.Values
		default:
			return true
		}
		if len(rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		acq, ok := resAcquirer(calleeFunc(t.info, call))
		if !ok || !want(acq.kind) || acq.resIdx >= len(lhs) {
			return true
		}
		resId, ok := ast.Unparen(lhs[acq.resIdx]).(*ast.Ident)
		if !ok {
			return true // stored straight into a field or index: not tracked
		}
		if resId.Name == "_" {
			if report != nil {
				if acq.kind == resCancel {
					report(call.Pos(), "the cancel function returned by %s is discarded: the derived context can never be cancelled and its resources never release", acq.name)
				} else {
					report(call.Pos(), "the %s returned by %s is discarded and can never be released", acq.kind.what(), acq.name)
				}
			}
			return true
		}
		obj := identObj(t.info, resId)
		if obj == nil {
			return true
		}
		ob := &resObligation{obj: obj, kind: acq.kind, src: acq.name, pos: call.Pos()}
		if acq.errIdx >= 0 && acq.errIdx < len(lhs) {
			ob.errObj = identObj(t.info, lhs[acq.errIdx])
		}
		t.addObligation(ob)
		t.acqAt[nn] = append(t.acqAt[nn], ob)
		return true
	})
}

// seedParam registers a single obligation for a releasable parameter held
// at entry (summary mode).
func (t *resTracker) seedParam(obj types.Object, kind resKind) *resObligation {
	ob := &resObligation{obj: obj, kind: kind, src: "parameter", pos: obj.Pos()}
	t.addObligation(ob)
	return ob
}

// creditScan credits releases and ownership transfers found under node
// (deferred calls, goroutine bodies, function literals) against every exit.
func (t *resTracker) creditScan(node ast.Node) {
	ast.Inspect(node, func(nn ast.Node) bool {
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, o := range resReleased(t.info, call) {
			for _, ob := range t.byObj[o] {
				ob.credited = true
			}
		}
		t.eachPassed(call, func(ob *resObligation, discharged bool, _ string) {
			if discharged {
				ob.credited = true
			}
		})
		return true
	})
}

// credits walks the function body and credits releases that run outside the
// straight-line flow: deferred calls, go statements, and function literals.
func (t *resTracker) credits(body ast.Node) {
	ast.Inspect(body, func(nn ast.Node) bool {
		switch nn := nn.(type) {
		case *ast.DeferStmt:
			t.creditScan(nn.Call)
			return false
		case *ast.GoStmt:
			t.creditScan(nn.Call)
			return false
		case *ast.FuncLit:
			t.creditScan(nn.Body)
			return false
		}
		return true
	})
}

// eachPassed invokes fn for every tracked obligation whose variable is
// passed as an argument of call, with whether the callee's summary (or the
// stdlib consumer allowlist) takes ownership.
func (t *resTracker) eachPassed(call *ast.CallExpr, fn func(ob *resObligation, discharged bool, calleeName string)) {
	var passed []*resObligation
	var idxs []int
	for i, arg := range call.Args {
		obj := identObj(t.info, arg)
		if obj == nil {
			continue
		}
		for _, ob := range t.byObj[obj] {
			passed = append(passed, ob)
			idxs = append(idxs, i)
		}
	}
	if len(passed) == 0 {
		return
	}
	callee := calleeFunc(t.info, call)
	name := "a dynamic function value"
	if callee != nil {
		name = callee.Name()
	}
	for i, ob := range passed {
		disch := callee != nil && (resStdlibConsumes(callee, idxs[i]) || t.sums[callee][idxs[i]])
		fn(ob, disch, name)
	}
}

// delKeys appends both the obligation's fact key and its pending companion.
func delKeys(dst []string, ob *resObligation) []string {
	return append(dst, ob.key, ob.key+"?")
}

// blockEvents extracts each block's replay sequence: acquisitions, releases,
// ownership transfers, and returns, in evaluation order. Deferred calls,
// go statements, and function literal bodies are skipped — they do not
// execute at this program point (credits handles them).
func (t *resTracker) blockEvents(cfg *CFG) map[*Block][]resEvent {
	events := make(map[*Block][]resEvent, len(cfg.Blocks))
	for _, blk := range cfg.Blocks {
		for _, node := range blk.Nodes {
			ast.Inspect(node, func(nn ast.Node) bool {
				switch nn := nn.(type) {
				case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
					return false
				case *ast.AssignStmt:
					for _, ob := range t.acqAt[nn] {
						events[blk] = append(events[blk], resEvent{acquire: ob})
					}
					if len(nn.Lhs) == len(nn.Rhs) {
						var del []string
						for i, l := range nn.Lhs {
							del = t.fieldStore(del, l, nn.Rhs[i])
						}
						if del != nil {
							events[blk] = append(events[blk], resEvent{del: del})
						}
					}
				case *ast.ValueSpec:
					for _, ob := range t.acqAt[nn] {
						events[blk] = append(events[blk], resEvent{acquire: ob})
					}
				case *ast.CompositeLit:
					var del []string
					for _, elt := range nn.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						del = t.fieldStore(del, kv.Key, kv.Value)
					}
					if del != nil {
						events[blk] = append(events[blk], resEvent{del: del})
					}
				case *ast.SendStmt:
					// Sending the resource hands ownership to the receiver.
					if obj := identObj(t.info, nn.Value); obj != nil {
						var del []string
						for _, ob := range t.byObj[obj] {
							del = delKeys(del, ob)
						}
						if del != nil {
							events[blk] = append(events[blk], resEvent{del: del})
						}
					}
				case *ast.ReturnStmt:
					ev := resEvent{ret: nn}
					for _, res := range nn.Results {
						ev.del = t.returnTransfers(ev.del, res)
					}
					events[blk] = append(events[blk], ev)
					return false
				case *ast.CallExpr:
					var del []string
					for _, o := range resReleased(t.info, nn) {
						for _, ob := range t.byObj[o] {
							del = delKeys(del, ob)
						}
					}
					t.eachPassed(nn, func(ob *resObligation, discharged bool, name string) {
						if discharged {
							del = delKeys(del, ob)
						} else if !ob.notePos.IsValid() {
							ob.noteName, ob.notePos = name, nn.Pos()
						}
					})
					if del != nil {
						events[blk] = append(events[blk], resEvent{del: del})
					}
				}
				return true
			})
		}
	}
	return events
}

// fieldStore appends discharge keys when value (an obligation variable) is
// stored into target, a struct field some module function releases.
func (t *resTracker) fieldStore(del []string, target, value ast.Expr) []string {
	obj := identObj(t.info, value)
	if obj == nil || len(t.byObj[obj]) == 0 {
		return del
	}
	var fieldObj types.Object
	switch x := ast.Unparen(target).(type) {
	case *ast.SelectorExpr:
		fieldObj = t.info.Uses[x.Sel]
	case *ast.Ident:
		fieldObj = t.info.Uses[x] // composite literal key
	}
	if fieldObj == nil || !t.fields[fieldObj] {
		return del
	}
	for _, ob := range t.byObj[obj] {
		del = delKeys(del, ob)
	}
	return del
}

// returnTransfers collects discharges for one return result: the resource
// appearing in the returned value (directly, behind &, or inside a
// composite literal) moves ownership to the caller. Calls inside the result
// are replayed as ordinary call events first.
func (t *resTracker) returnTransfers(del []string, e ast.Expr) []string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(t.info, e); obj != nil {
			for _, ob := range t.byObj[obj] {
				del = delKeys(del, ob)
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			del = t.returnTransfers(del, e.X)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				del = t.returnTransfers(del, kv.Value)
			} else {
				del = t.returnTransfers(del, elt)
			}
		}
	case *ast.CallExpr:
		// return f.Close() — the release executes before the return.
		for _, o := range resReleased(t.info, e) {
			for _, ob := range t.byObj[o] {
				del = delKeys(del, ob)
			}
		}
		t.eachPassed(e, func(ob *resObligation, discharged bool, name string) {
			if discharged {
				del = delKeys(del, ob)
			} else if !ob.notePos.IsValid() {
				ob.noteName, ob.notePos = name, e.Pos()
			}
		})
	}
	return del
}

// refine is the branch refiner for ForwardEdges: on the arm where an
// obligation's paired error is non-nil the resource is nil and the
// obligation is deleted; on the validated arm only the pending companion
// clears. A nil-check of the resource variable itself deletes the
// obligation on the nil arm.
func (t *resTracker) refine(from, to *Block, f Facts) Facts {
	if from.Cond == nil {
		return f
	}
	bin, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return f
	}
	var condObj types.Object
	if isNilExpr(t.info, bin.Y) {
		condObj = identObj(t.info, bin.X)
	} else if isNilExpr(t.info, bin.X) {
		condObj = identObj(t.info, bin.Y)
	}
	if condObj == nil {
		return f
	}
	trueIsNil := bin.Op == token.EQL
	toIsTrue := to == from.TrueSucc
	nilEdge := toIsTrue == trueIsNil

	for _, ob := range t.byErr[condObj] {
		if _, pending := f[ob.key+"?"]; !pending {
			continue // already validated, or not yet acquired
		}
		if nilEdge {
			delete(f, ob.key+"?") // err == nil: resource is live
		} else {
			delete(f, ob.key) // err != nil: resource is nil, nothing to release
			delete(f, ob.key+"?")
		}
	}
	if nilEdge {
		for _, ob := range t.byObj[condObj] {
			delete(f, ob.key)
			delete(f, ob.key+"?")
		}
	}
	return f
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// applyEvent folds one replay event into the fact map.
func applyEvent(f Facts, ev resEvent) {
	if ev.acquire != nil {
		f[ev.acquire.key] = FactMust
		if ev.acquire.errObj != nil {
			f[ev.acquire.key+"?"] = FactMust
		}
	}
	for _, k := range ev.del {
		delete(f, k)
	}
}

// solve runs the obligation dataflow and returns the block-entry facts.
func (t *resTracker) solve(cfg *CFG, events map[*Block][]resEvent) map[*Block]Facts {
	return cfg.ForwardEdges(func(blk *Block, in Facts) Facts {
		for _, ev := range events[blk] {
			applyEvent(in, ev)
		}
		return in
	}, t.refine)
}

// leakExit replays the blocks feeding the exit and returns the position of
// the first exit (in source order) the obligation is still held at: a
// return statement, or end for the fall-off-the-end path.
func (t *resTracker) leakExit(cfg *CFG, in map[*Block]Facts, events map[*Block][]resEvent, ob *resObligation, end token.Pos) token.Pos {
	best := token.NoPos
	better := func(p token.Pos) {
		if !best.IsValid() || p < best {
			best = p
		}
	}
	for _, blk := range cfg.Blocks {
		facts, ok := in[blk]
		if !ok {
			continue
		}
		toExit := false
		for _, s := range blk.Succs {
			if s == cfg.Exit {
				toExit = true
			}
		}
		if !toExit {
			continue
		}
		f := facts.Clone()
		sawRet := false
		for _, ev := range events[blk] {
			applyEvent(f, ev)
			if ev.ret != nil {
				sawRet = true
				if _, held := f[ob.key]; held {
					better(ev.ret.Pos())
				}
			}
		}
		if !sawRet {
			if _, held := f[ob.key]; held {
				better(end)
			}
		}
	}
	if !best.IsValid() {
		return ob.pos
	}
	return best
}

// checkResLifetime runs the must-release analysis for one function or
// function literal and reports surviving obligations of the wanted kinds.
func checkResLifetime(pass *Pass, fn ast.Node, want func(resKind) bool, sums resSummaries, fields map[types.Object]bool) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}
	if body == nil {
		return
	}
	t := newResTracker(pass.Pkg.Info, pass.Fset, sums, fields)
	t.collectObligations(body, want, pass.Reportf)
	if len(t.obs) == 0 {
		return
	}
	cfg := pass.CFG(fn)
	if cfg == nil || cfg.Hairy {
		return
	}
	t.credits(body)
	events := t.blockEvents(cfg)
	in := t.solve(cfg, events)
	exitFacts, ok := in[cfg.Exit]
	if !ok {
		return // no path returns (e.g. an accept loop): nothing leaks
	}
	for _, ob := range t.obs {
		if ob.credited {
			continue
		}
		state, held := exitFacts[ob.key]
		if !held {
			continue
		}
		pathWord := "some path"
		if state == FactMust {
			pathWord = "every path"
		}
		leakLine := pass.Fset.Position(t.leakExit(cfg, in, events, ob, body.Rbrace)).Line
		note := ""
		if ob.notePos.IsValid() {
			note = fmt.Sprintf("; the call to %s at line %d does not take ownership of it",
				ob.noteName, pass.Fset.Position(ob.notePos).Line)
		}
		if ob.kind == resCancel {
			pass.Reportf(ob.pos, "context.CancelFunc from %s is not called on %s to return (still pending at the exit on line %d); call or defer it on every path, or pass it to a function that invokes it%s",
				ob.src, pathWord, leakLine, note)
		} else {
			pass.Reportf(ob.pos, "%s acquired from %s is not released on %s to return (leaks at the exit on line %d); %s it on every path, defer it, or transfer ownership%s",
				ob.kind.what(), ob.src, pathWord, leakLine, ob.kind.releaseHint(), note)
		}
	}
}

// runResLifetime is the shared analyzer driver for rescleak and lostcancel:
// every function declaration and every function literal (a separate
// execution context) gets its own obligation dataflow.
func runResLifetime(pass *Pass, want func(resKind) bool) {
	graph := pass.CallGraph()
	sums := resourceSummaries(graph)
	fields := releasableFields(graph)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkResLifetime(pass, fd, want, sums, fields)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkResLifetime(pass, lit, want, sums, fields)
				}
				return true
			})
		}
	}
}

// releasableFields computes, once per run, the struct fields some module
// function releases (d.ln.Close(), s.cancel(), t.ticker.Stop()). Storing a
// resource into one of these fields transfers the obligation to the
// struct's release path.
func releasableFields(graph *CallGraph) map[types.Object]bool {
	return graph.Memo("reslife.fields", func() any {
		fields := map[types.Object]bool{}
		graph.Nodes(func(n *CallNode) {
			info := n.Pkg.Info
			ast.Inspect(n.Decl.Body, func(nn ast.Node) bool {
				if call, ok := nn.(*ast.CallExpr); ok {
					for _, o := range resReleased(info, call) {
						if v, ok := o.(*types.Var); ok && v.IsField() {
							fields[o] = true
						}
					}
				}
				return true
			})
		})
		return fields
	}).(map[types.Object]bool)
}

// resourceSummaries computes, once per run and to fixpoint over the call
// graph, which parameters each module function releases on every path. A
// function's summary may depend on its callees' summaries (the release can
// be delegated another hop down), so candidates are re-examined until the
// set stops growing — summaries only ever gain entries, so the iteration
// terminates.
func resourceSummaries(graph *CallGraph) resSummaries {
	return graph.Memo("reslife.summaries", func() any {
		fields := releasableFields(graph)
		type cand struct {
			n    *CallNode
			idx  int
			obj  types.Object
			kind resKind
		}
		var cands []cand
		graph.Nodes(func(n *CallNode) {
			sig, ok := n.Func.Type().(*types.Signature)
			if !ok {
				return
			}
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if p.Name() == "" || p.Name() == "_" {
					continue
				}
				if k, ok := releasableKind(p.Type()); ok {
					cands = append(cands, cand{n, i, p, k})
				}
			}
		})
		sums := resSummaries{}
		for changed := true; changed; {
			changed = false
			for _, c := range cands {
				if sums[c.n.Func][c.idx] {
					continue
				}
				if !paramAlwaysReleased(c.n, c.obj, c.kind, sums, fields) {
					continue
				}
				m := sums[c.n.Func]
				if m == nil {
					m = map[int]bool{}
					sums[c.n.Func] = m
				}
				m[c.idx] = true
				changed = true
			}
		}
		return sums
	}).(resSummaries)
}

// paramAlwaysReleased runs the obligation dataflow with the parameter held
// at entry and reports whether it is discharged on every path to return.
func paramAlwaysReleased(n *CallNode, obj types.Object, kind resKind, sums resSummaries, fields map[types.Object]bool) bool {
	cfg := n.Pkg.funcCFG(n.Decl)
	if cfg == nil || cfg.Hairy {
		return false
	}
	t := newResTracker(n.Pkg.Info, nil, sums, fields)
	ob := t.seedParam(obj, kind)
	t.credits(n.Decl.Body)
	if ob.credited {
		return true
	}
	events := t.blockEvents(cfg)
	in := cfg.ForwardEdges(func(blk *Block, f Facts) Facts {
		if blk == cfg.Entry() {
			// The parameter arrives held; entry facts start empty, so the
			// obligation is injected at the top of the entry block.
			f[ob.key] = FactMust
		}
		for _, ev := range events[blk] {
			applyEvent(f, ev)
		}
		return f
	}, t.refine)
	exitFacts, ok := in[cfg.Exit]
	if !ok {
		return true // never returns: the obligation cannot leak to a caller
	}
	_, held := exitFacts[ob.key]
	return !held
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the module-wide interprocedural layer of the framework: a
// static call graph built once per run over every loaded module package and
// shared (memoized on the Loader) by all analyzers. Where cfg.go answers
// "what happens inside this function", the call graph answers "who can
// reach whom across the whole module", which is what the reachability-based
// checks (ctxflow, hotalloc, sharedwrite, the interprocedural half of
// lockcheck) are built on.
//
// Resolution rules, in decreasing order of confidence:
//
//   - direct calls to declared functions and methods are resolved through
//     go/types (including promoted methods and method-on-pointer sugar);
//   - calls of function-typed parameters are resolved one level deep:
//     every function value passed for that parameter at any static call
//     site of the enclosing function becomes a callee. This is exactly
//     enough for the pipeline.ForEachContext(ctx, n, p, fn) callback shape;
//   - function literals are flattened into the declared function that
//     lexically contains them: their calls become the container's edges.
//     A literal passed outward and invoked elsewhere therefore credits its
//     creator, a deliberate over-approximation that keeps reachability
//     sound for the cost-style analyses built on top;
//   - interface method calls, calls through stored function values (fields,
//     map entries, channel receives), and anything touching reflect are NOT
//     resolved. The node is marked Hairy with the first reason, so clients
//     that need a complete edge set can treat hairy nodes pessimistically
//     instead of trusting a silently-truncated graph.
//
// Edges made inside a function literal handed to (*sync.Once).Do are marked
// Once: they execute at most once per process, and reachability queries that
// model steady-state behavior (sharedwrite) skip them.

// A CallGraph is the module-wide static call graph over every package the
// loader has type-checked. Build it through Loader.CallGraph (or
// Pass.CallGraph); the zero value is not useful.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	// funcs holds the node keys in deterministic order: package path, then
	// source position.
	funcs []*types.Func
	// memos holds analyzer-computed derived data (e.g. lockcheck's
	// transitive lock summaries) keyed by analyzer-chosen strings, so a
	// derivation over the whole graph is computed once per run, not once
	// per package pass.
	memos map[string]any
}

// Memo returns the graph-scoped memo under key, building it on first use.
// The graph is shared by every analyzer in a run, so derived whole-module
// data memoized here is computed exactly once.
func (g *CallGraph) Memo(key string, build func() any) any {
	if g.memos == nil {
		g.memos = make(map[string]any)
	}
	if v, ok := g.memos[key]; ok {
		return v
	}
	v := build()
	g.memos[key] = v
	return v
}

// A CallNode is one declared function or method with a body in a loaded
// module package.
type CallNode struct {
	// Func is the type-checker's object for the declaration.
	Func *types.Func
	// Decl is the syntax of the declaration.
	Decl *ast.FuncDecl
	// Pkg is the loaded package declaring the function.
	Pkg *Package
	// Callees lists the resolved outgoing edges, deduplicated and in
	// deterministic order (callee package path, then position).
	Callees []CallEdge
	// Hairy marks a function whose edge set is incomplete because it uses
	// a call shape the builder does not model; HairyReason names the first
	// such shape ("calls into reflect", "calls dynamic function value").
	Hairy       bool
	HairyReason string
}

// A CallEdge is one resolved caller→callee relationship.
type CallEdge struct {
	// Callee is the target node.
	Callee *CallNode
	// Pos is a representative call site (the first one seen in source
	// order); the same callee called twice keeps one edge.
	Pos token.Pos
	// Once marks an edge made inside a function literal passed to
	// (*sync.Once).Do: it executes at most once per process.
	Once bool
	// Callback marks an edge synthesized from one-level function-value
	// parameter tracking rather than a direct call expression.
	Callback bool
}

// Node returns the graph node for fn, or nil when fn is not a declared
// module function with a body.
func (g *CallGraph) Node(fn *types.Func) *CallNode { return g.nodes[fn] }

// Funcs returns every node key in deterministic order.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// Nodes calls visit for every node in deterministic order.
func (g *CallGraph) Nodes(visit func(*CallNode)) {
	for _, fn := range g.funcs {
		visit(g.nodes[fn])
	}
}

// ReachOptions tune a reachability query.
type ReachOptions struct {
	// SkipOnce excludes edges made under (*sync.Once).Do.
	SkipOnce bool
}

// Reachable walks the graph from the given roots and returns, for every
// function reachable from any root (the roots themselves included), the
// root that first reached it. Roots are visited in the deterministic graph
// order, so the recorded witness is stable across runs.
func (g *CallGraph) Reachable(roots []*CallNode, opts ReachOptions) map[*CallNode]*CallNode {
	// Order roots deterministically without trusting the caller.
	ordered := make([]*CallNode, 0, len(roots))
	seen := make(map[*CallNode]bool, len(roots))
	for _, fn := range g.funcs {
		n := g.nodes[fn]
		for _, r := range roots {
			if r == n && !seen[n] {
				seen[n] = true
				ordered = append(ordered, n)
			}
		}
	}
	out := make(map[*CallNode]*CallNode)
	var walk func(n, root *CallNode)
	walk = func(n, root *CallNode) {
		if _, ok := out[n]; ok {
			return
		}
		out[n] = root
		for _, e := range n.Callees {
			if opts.SkipOnce && e.Once {
				continue
			}
			walk(e.Callee, root)
		}
	}
	for _, r := range ordered {
		walk(r, r)
	}
	return out
}

// CallGraph returns the module-wide call graph over every package this
// loader has loaded so far, building it on first use and memoizing it.
// analysis.Run preloads every requested package before the first analyzer
// runs, so analyzers always see the full graph; a Load after the graph is
// built invalidates the memo.
func (l *Loader) CallGraph() *CallGraph {
	if l.graph == nil {
		l.graph = buildCallGraph(l)
	}
	return l.graph
}

// CallGraph returns the memoized module-wide call graph (see
// Loader.CallGraph). It sits alongside Pass.CFG: the CFG is the
// intraprocedural view of one function, the call graph the interprocedural
// view of the whole module.
func (p *Pass) CallGraph() *CallGraph { return p.Loader.CallGraph() }

func buildCallGraph(l *Loader) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}

	// Deterministic package order.
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	// Pass 1: one node per declared function/method with a body.
	for _, path := range paths {
		pkg := l.pkgs[path]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CallNode{Func: fn, Decl: fd, Pkg: pkg}
				g.funcs = append(g.funcs, fn)
			}
		}
	}

	// Pass 2: direct edges, plus the raw material for callback edges — for
	// every call site passing a function value for a function-typed
	// parameter, record (callee, param index) → bound node.
	type paramKey struct {
		fn    *types.Func
		index int
	}
	bindings := make(map[paramKey][]*CallNode)
	// paramCalls records, per function, which of its own function-typed
	// parameters it invokes (with the representative call position and the
	// once flag at that site).
	type paramUse struct {
		key  paramKey
		pos  token.Pos
		once bool
	}
	var paramUses []paramUse

	for _, caller := range g.funcs {
		n := g.nodes[caller]
		info := n.Pkg.Info
		edgeSeen := make(map[*CallNode]int) // callee → index into n.Callees

		addEdge := func(callee *CallNode, pos token.Pos, once, callback bool) {
			if i, ok := edgeSeen[callee]; ok {
				// Keep the strongest claim: a non-once edge beats a once
				// edge, a direct edge beats a callback edge.
				if !once {
					n.Callees[i].Once = false
				}
				if !callback {
					n.Callees[i].Callback = false
				}
				return
			}
			edgeSeen[callee] = len(n.Callees)
			n.Callees = append(n.Callees, CallEdge{Callee: callee, Pos: pos, Once: once, Callback: callback})
		}

		// ownParams maps the *types.Var parameters of caller (function-typed
		// only) to their index, for detecting calls of parameters.
		ownParams := map[types.Object]int{}
		if sig, ok := caller.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len(); i++ {
				p := sig.Params().At(i)
				if _, isSig := p.Type().Underlying().(*types.Signature); isSig {
					ownParams[p] = i
				}
			}
		}

		// walk visits the body (flattening nested literals), tracking
		// whether we are under a sync.Once.Do literal.
		var walk func(node ast.Node, once bool)
		walk = func(node ast.Node, once bool) {
			ast.Inspect(node, func(nn ast.Node) bool {
				call, ok := nn.(*ast.CallExpr)
				if !ok {
					// Any mention of the reflect package makes the edge set
					// untrustworthy for completeness claims.
					if id, ok := nn.(*ast.Ident); ok && !n.Hairy {
						if obj := info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "reflect" {
							n.Hairy = true
							n.HairyReason = "uses package reflect"
						}
					}
					return true
				}

				// Once.Do literals: recurse manually with the once flag and
				// stop the outer inspection from double-visiting.
				if isOnceDoCall(info, call) {
					// A named function passed to once.Do runs at most once;
					// steady-state reachability has no edge to record, and a
					// literal's calls are walked with the once flag set.
					for _, arg := range call.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							walk(lit.Body, true)
						}
					}
					return false
				}

				fun := ast.Unparen(call.Fun)
				callee := calleeFunc(info, call)
				switch {
				case callee != nil:
					if target := g.nodes[callee]; target != nil {
						addEdge(target, call.Pos(), once, false)
					} else if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
						if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface && !n.Hairy {
							// Interface dispatch: target set unknown.
							n.Hairy = true
							n.HairyReason = "calls interface method " + callee.Name()
						}
					}
					// Record function-valued arguments as bindings for the
					// callee's function-typed parameters.
					if sig, ok := callee.Type().(*types.Signature); ok {
						for i, arg := range call.Args {
							if i >= sig.Params().Len() {
								break // variadic tail: not tracked
							}
							if _, isSig := sig.Params().At(i).Type().Underlying().(*types.Signature); !isSig {
								continue
							}
							if bound := funcValueNode(info, g, arg); bound != nil {
								k := paramKey{fn: callee, index: i}
								bindings[k] = append(bindings[k], bound)
							}
						}
					}
				case isFuncLitCall(fun):
					// Immediately-invoked literal: already flattened.
				default:
					// A call of a function-typed value. A parameter of the
					// caller gets one-level callback resolution; anything
					// else (stored field, map entry, channel receive) is
					// dynamic dispatch we refuse to guess at.
					if id, ok := fun.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							if idx, isParam := ownParams[obj]; isParam {
								paramUses = append(paramUses, paramUse{
									key:  paramKey{fn: caller, index: idx},
									pos:  call.Pos(),
									once: once,
								})
								return true
							}
							if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
								return true // panic, len, append, ...: no edge, no hair
							}
						}
					}
					if conversionTarget(info, call) {
						return true // type conversion, not a call
					}
					if !n.Hairy {
						n.Hairy = true
						n.HairyReason = "calls dynamic function value"
					}
				}
				return true
			})
		}
		walk(n.Decl.Body, false)
	}

	// Pass 3: callback edges. For every function that calls one of its
	// function-typed parameters, every value statically bound to that
	// parameter becomes a callee.
	for _, use := range paramUses {
		caller := g.nodes[use.key.fn]
		if caller == nil {
			continue
		}
		targets := bindings[use.key]
		// Deterministic order by graph order.
		sort.Slice(targets, func(i, j int) bool { return nodeLess(targets[i], targets[j]) })
		seen := map[*CallNode]int{}
		for i := range caller.Callees {
			seen[caller.Callees[i].Callee] = i
		}
		for _, t := range targets {
			if i, ok := seen[t]; ok {
				if !use.once {
					caller.Callees[i].Once = false
				}
				continue
			}
			seen[t] = len(caller.Callees)
			caller.Callees = append(caller.Callees, CallEdge{Callee: t, Pos: use.pos, Once: use.once, Callback: true})
		}
	}

	// Final determinism pass: sort each node's edges.
	for _, fn := range g.funcs {
		n := g.nodes[fn]
		sort.Slice(n.Callees, func(i, j int) bool {
			return nodeLess(n.Callees[i].Callee, n.Callees[j].Callee)
		})
	}
	return g
}

// nodeLess orders nodes by package path then source position.
func nodeLess(a, b *CallNode) bool {
	if a.Pkg.Path != b.Pkg.Path {
		return a.Pkg.Path < b.Pkg.Path
	}
	return a.Decl.Pos() < b.Decl.Pos()
}

// funcValueNode resolves a function-valued expression to a graph node: a
// plain identifier naming a declared function, a selector naming a method
// or package function (method values included), or a function literal —
// which flattens to the declared function containing it, found by position.
func funcValueNode(info *types.Info, g *CallGraph, e ast.Expr) *CallNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[e].(*types.Func); ok {
			return g.nodes[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[e.Sel].(*types.Func); ok {
			return g.nodes[fn]
		}
	case *ast.FuncLit:
		return enclosingNode(g, e)
	}
	return nil
}

// enclosingNode finds the declared function lexically containing a literal.
func enclosingNode(g *CallGraph, lit *ast.FuncLit) *CallNode {
	for _, fn := range g.funcs {
		n := g.nodes[fn]
		if n.Decl.Pos() <= lit.Pos() && lit.End() <= n.Decl.End() {
			return n
		}
	}
	return nil
}

// isFuncLitCall reports whether fun is a function literal (an immediately
// invoked closure).
func isFuncLitCall(fun ast.Expr) bool {
	_, ok := fun.(*ast.FuncLit)
	return ok
}

// conversionTarget reports whether a call expression is actually a type
// conversion (T(x)), which calleeFunc cannot resolve but is not dynamic
// dispatch either.
func conversionTarget(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok {
		return tv.IsType()
	}
	return false
}

// isOnceDoCall reports whether a call is (*sync.Once).Do, without needing a
// Pass (the graph builder runs over every package at once).
func isOnceDoCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Do" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Once"
}

package strudel

// Tests for the single-pass annotation pipeline and the batch API:
// Annotate must run each expensive stage exactly once per file, and
// training/annotation must be byte-identical at every parallelism level.

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"strudel/internal/pipeline"
)

// TestAnnotateSinglePass asserts the pipeline acceptance criterion: one
// Annotate call performs exactly one line feature extraction, one
// Strudel^L probability batch, and one cell feature extraction — not one
// per consuming stage.
func TestAnnotateSinglePass(t *testing.T) {
	m := trainedModel(t)
	tbl := Parse(sampleCSV, DefaultDialect)

	pipeline.ResetCounts()
	ann := m.Annotate(tbl)
	c := pipeline.Counts()
	if c.LineFeatures != 1 {
		t.Errorf("Annotate ran %d line feature extractions, want exactly 1", c.LineFeatures)
	}
	if c.LineProbabilities != 1 {
		t.Errorf("Annotate ran the Strudel^L batch %d times, want exactly 1", c.LineProbabilities)
	}
	if c.CellFeatures != 1 {
		t.Errorf("Annotate ran %d cell feature extractions, want exactly 1", c.CellFeatures)
	}
	if len(ann.Lines) != tbl.Height() || len(ann.LineProbabilities) != tbl.Height() {
		t.Fatalf("annotation shape mismatch: %d lines, %d prob rows, table height %d",
			len(ann.Lines), len(ann.LineProbabilities), tbl.Height())
	}

	// A corpus of N files must scale the stage counts exactly linearly.
	files := []*Table{Parse(sampleCSV, DefaultDialect), Parse(sampleCSV, DefaultDialect), Parse(sampleCSV, DefaultDialect)}
	pipeline.ResetCounts()
	m.AnnotateAll(files, BatchOptions{Parallelism: 2})
	c = pipeline.Counts()
	if c.LineFeatures != int64(len(files)) || c.LineProbabilities != int64(len(files)) {
		t.Errorf("AnnotateAll over %d files ran %d line extractions and %d probability batches, want %d each",
			len(files), c.LineFeatures, c.LineProbabilities, len(files))
	}
}

// TestAnnotateMatchesGranularAPIs pins the refactor: the single-pass
// Annotate must return exactly what the three granular entry points return.
func TestAnnotateMatchesGranularAPIs(t *testing.T) {
	m := trainedModel(t)
	tbl := Parse(sampleCSV, DefaultDialect)

	ann := m.Annotate(tbl)
	if !reflect.DeepEqual(ann.Lines, m.ClassifyLines(tbl)) {
		t.Error("Annotate.Lines differs from ClassifyLines")
	}
	if !reflect.DeepEqual(ann.Cells, m.ClassifyCells(tbl)) {
		t.Error("Annotate.Cells differs from ClassifyCells")
	}
	if !reflect.DeepEqual(ann.LineProbabilities, m.LineProbabilities(tbl)) {
		t.Error("Annotate.LineProbabilities differs from LineProbabilities")
	}
}

// TestParallelismDeterminism trains and annotates the same corpus with one
// worker and with eight; the saved models and every prediction must be
// byte-identical.
func TestParallelismDeterminism(t *testing.T) {
	files, err := GenerateCorpus("govuk", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	opts := TrainOptions{Trees: 12, Seed: 7, MaxCellsPerFile: 150}

	opts.Parallelism = 1
	serial, err := Train(files, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	parallel, err := Train(files, opts)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := serial.Save(&a, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Save(&b, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("training with Parallelism 1 and 8 produced different models")
	}

	test := files[:10]
	ann1 := serial.AnnotateAll(test, BatchOptions{Parallelism: 1})
	ann8 := serial.AnnotateAll(test, BatchOptions{Parallelism: 8})
	j1, err := json.Marshal(ann1)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(ann8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("AnnotateAll with Parallelism 1 and 8 produced different predictions")
	}
	for i, f := range test {
		want := serial.Annotate(f)
		if !reflect.DeepEqual(ann8[i], want) {
			t.Fatalf("file %d: parallel batch annotation differs from a direct Annotate call", i)
		}
	}
}

// TestTestdataCorpusDeterminism is the end-to-end determinism regression:
// annotating the real CSV files under testdata/ with one worker and with
// every CPU must serialize to byte-identical output. This is the contract
// the nondeterminism analyzer enforces statically; this test enforces it
// dynamically on real inputs.
func TestTestdataCorpusDeterminism(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no CSV files under testdata/")
	}

	var files []*Table
	for _, p := range paths {
		tbl, _, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		files = append(files, tbl)
	}

	m := trainedModel(t)
	serialize := func(anns []*Annotation) []byte {
		b, err := json.Marshal(anns)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	serial := serialize(m.AnnotateAll(files, BatchOptions{Parallelism: 1}))
	for run := 0; run < 3; run++ {
		parallel := serialize(m.AnnotateAll(files, BatchOptions{Parallelism: runtime.NumCPU()}))
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("run %d: annotating testdata with %d workers differs from serial output",
				run, runtime.NumCPU())
		}
	}
}

package strudel_test

// End-to-end exercise of the annotation service: a real model behind a
// real TCP listener, driven through the public HTTP surface — upload,
// path-ref, the typed failure statuses, request coalescing, and the
// graceful drain. (External test package: internal/serve imports the root
// package, so this test cannot live in package strudel.)

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"strudel"
	"strudel/internal/obs"
	"strudel/internal/serve"
)

const serveSampleCSV = `Employment by Sector 2020,,,
,,,
Sector,Q1,Q2,Q3
Manufacturing,120,130,125
Construction,80,85,90
Retail,200,210,205
Total,400,425,420
,,,
Source: labour force survey,,,
`

func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	files, err := strudel.GenerateCorpus("saus", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	model, err := strudel.Train(files, strudel.TrainOptions{Trees: 10, Seed: 1, LineOnly: true})
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "ref.csv"), []byte(serveSampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	registry := strudel.NewObsRegistry()
	srv, err := serve.New(serve.Config{
		Model:    model,
		Load:     strudel.LoadOptions{Ingest: strudel.IngestOptions{MaxBytes: 1 << 20}},
		PathRoot: root,
		Registry: registry,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	// Readiness comes up before any annotation work.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d", resp.StatusCode)
	}

	// Upload: the annotation comes back with one class per line.
	status, body := post("/v1/annotate", serveSampleCSV)
	if status != http.StatusOK {
		t.Fatalf("upload: %d %s", status, body)
	}
	var ann struct {
		Dialect string   `json:"dialect"`
		Lines   []string `json:"lines"`
	}
	if err := json.Unmarshal(body, &ann); err != nil {
		t.Fatal(err)
	}
	if len(ann.Lines) != 9 {
		t.Errorf("upload lines = %d, want 9", len(ann.Lines))
	}

	// Path-ref: the same file by reference yields the same annotation.
	status, refBody := post("/v1/annotate?path=ref.csv", "")
	if status != http.StatusOK {
		t.Fatalf("path-ref: %d %s", status, refBody)
	}
	var refAnn struct {
		File  string   `json:"file"`
		Lines []string `json:"lines"`
	}
	if err := json.Unmarshal(refBody, &refAnn); err != nil {
		t.Fatal(err)
	}
	if refAnn.File != "ref.csv" || len(refAnn.Lines) != len(ann.Lines) {
		t.Errorf("path-ref annotation diverged: file %q, %d lines", refAnn.File, len(refAnn.Lines))
	}

	// Oversized upload: shed with the typed 413 before annotation.
	status, body = post("/v1/annotate", strings.Repeat("x,y,z\n", 200000))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: %d %s", status, body)
	}

	// Malformed encoding: typed 422 naming the taxonomy sentinel. The
	// hostile corpus's binary blob is undecodable even under lenient repair.
	blob, err := os.ReadFile(filepath.Join("testdata", "hostile", "binary_blob.csv"))
	if err != nil {
		t.Fatal(err)
	}
	status, body = post("/v1/annotate", string(blob))
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("malformed: %d %s", status, body)
	}
	var apiErr struct {
		Error struct {
			Kind     string `json:"kind"`
			Taxonomy string `json:"taxonomy"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Error.Kind != "bad_encoding" || apiErr.Error.Taxonomy != "ErrBadEncoding" {
		t.Errorf("malformed: kind/taxonomy = %s/%s, want bad_encoding/ErrBadEncoding",
			apiErr.Error.Kind, apiErr.Error.Taxonomy)
	}

	// Concurrent identical uploads coalesce: the counter must move.
	distinct := serveSampleCSV + "Extra,1,2,3\n"
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := post("/v1/annotate", distinct)
			if status != http.StatusOK {
				t.Errorf("coalesced upload: %d %s", status, body)
			}
		}()
	}
	wg.Wait()
	if got := registry.Counter(obs.MServeCoalesced).Value(); got < 1 {
		t.Errorf("serve/coalesced = %d, want >= 1 after 6 identical uploads", got)
	}

	// Graceful drain: cancelling the serve context returns nil promptly.
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("drain returned %v, want nil", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("Serve never returned after cancellation")
	}
}

package strudel_test

import (
	"fmt"
	"strings"

	"strudel"
)

// ExampleDetectDialect shows dialect detection on a semicolon-delimited
// file with decimal commas — the classic case where naive comma splitting
// shreds the values.
func ExampleDetectDialect() {
	text := "name;v1;v2\na;1,5;2,5\nb;3,5;4,5\nc;5,5;6,5\n"
	d, err := strudel.DetectDialect(text)
	if err != nil {
		panic(err)
	}
	fmt.Println(d)
	tbl := strudel.Parse(text, d)
	fmt.Println(tbl.Height(), "x", tbl.Width())
	// Output:
	// delim=';' quote='"'
	// 4 x 3
}

// ExampleParse shows grid construction and margin cropping.
func ExampleParse() {
	tbl := strudel.Parse(",,,\n,a,b,\n,c,d,\n,,,\n", strudel.DefaultDialect)
	fmt.Println(tbl.Height(), "x", tbl.Width())
	fmt.Println(tbl.Cell(0, 0), tbl.Cell(1, 1))
	// Output:
	// 2 x 2
	// a d
}

// ExampleDetectDerivedCells audits the arithmetic of a small report: the
// anchored Total line is recognized as an aggregation of the data above it.
func ExampleDetectDerivedCells() {
	tbl, _, err := strudel.LoadReader(strings.NewReader(
		"Item,Q1,Q2\napples,10,20\npears,30,40\nTotal,40,60\n"), strudel.LoadOptions{})
	if err != nil {
		panic(err)
	}
	derived := strudel.DetectDerivedCells(tbl)
	fmt.Println("total Q1 derived:", derived[3][1])
	fmt.Println("data  Q1 derived:", derived[1][1])
	// Output:
	// total Q1 derived: true
	// data  Q1 derived: false
}

// ExampleContainsAggregationWord shows the Section 4 keyword dictionary.
func ExampleContainsAggregationWord() {
	fmt.Println(strudel.ContainsAggregationWord("Grand total"))
	fmt.Println(strudel.ContainsAggregationWord("totally unrelated"))
	// Output:
	// true
	// false
}

// ExampleNewObsHooks shows the opt-in observability layer: hooks passed
// through LoadOptions record ingestion and dialect metrics into a registry
// whose snapshot is queryable by name (or rendered as deterministic JSON
// with WriteJSON).
func ExampleNewObsHooks() {
	registry := strudel.NewObsRegistry()
	hooks := strudel.NewObsHooks(registry)
	_, _, err := strudel.LoadReader(strings.NewReader("a,b\n1,2\n3,4\n"),
		strudel.LoadOptions{Obs: hooks})
	if err != nil {
		panic(err)
	}
	snap := registry.Snapshot()
	files, _ := snap.Counter("ingest/files")
	detections, _ := snap.Counter("dialect/detections")
	fmt.Println("files:", files, "detections:", detections)
	// Output:
	// files: 1 detections: 1
}

// ExampleParseClass round-trips a class name.
func ExampleParseClass() {
	c, _ := strudel.ParseClass("derived")
	fmt.Println(c)
	// Output:
	// derived
}

// Quickstart: train a small Strudel model on a synthetic corpus and
// annotate a verbose CSV file, printing the class of every line and cell.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"strudel"
)

// report is a typical verbose CSV file: title, blank separator, header,
// data, an aggregation line, and a footnote.
const report = `Drug Seizures by Substance 2019,,,
,,,
Substance,Seizures,Arrests,Convictions
Cannabis,1204,801,512
Heroin,310,205,118
Cocaine,415,300,199
Sale/Manufacturing:,,,
Methamphetamine,98,75,44
Total,2027,1381,873
,,,
Source: national enforcement registry,,,
`

func main() {
	// 1. Train a model. Real deployments load a saved model instead
	// (strudel.LoadModelFile); here we fit a small one on the synthetic
	// SAUS-like corpus so the example is self-contained.
	corpus, err := strudel.GenerateCorpus("saus", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	model, err := strudel.Train(corpus, strudel.TrainOptions{
		Trees: 30, Seed: 42, MaxCellsPerFile: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load the verbose file. Dialect detection is automatic.
	tbl, dialect, err := strudel.LoadReader(strings.NewReader(report), strudel.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %dx%d table (%s)\n\n", tbl.Height(), tbl.Width(), dialect)

	// 3. Annotate lines and cells.
	ann := model.Annotate(tbl)
	for r := 0; r < tbl.Height(); r++ {
		fmt.Printf("%2d %-9s %s\n", r+1, ann.Lines[r], strings.Join(tbl.Row(r), " | "))
	}

	// 4. Per-cell view of the aggregation line: the leading label is a
	// group cell, the numbers are derived cells.
	fmt.Println("\ncells of the 'Total' line:")
	for c := 0; c < tbl.Width(); c++ {
		fmt.Printf("  %-22q %s\n", tbl.Cell(8, c), ann.Cells[8][c])
	}

	// 5. Line-level confidence from Strudel-L.
	fmt.Println("\nconfidence for line 9 (Total):")
	for i, cls := range strudel.Classes {
		fmt.Printf("  %-9s %.3f\n", cls, ann.LineProbabilities[8][i])
	}
}

// Extract: turn a verbose CSV file into a clean, machine-readable
// relational table — the use case that motivates the paper's introduction.
// The input mixes titles, group labels, aggregate rows, and footnotes with
// the actual data; structure detection separates them so only the header
// and the data rows survive.
//
// Run with:
//
//	go run ./examples/extract [file.csv]
//
// Without an argument, a built-in example file is used.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"strudel"
)

const builtin = `Regional Energy Production,,,,
Reference period: calendar year,,,,
,,,,
Region,Coal,Gas,Wind,Solar
North,1200,3400,210,95
South,800,2100,450,310
East,1500,1800,120,60
West,400,900,800,420
Total,3900,8200,1580,885
,,,,
Note: values in gigawatt hours,,,,
* preliminary figures,,,,
`

func main() {
	var tbl *strudel.Table
	var err error
	if len(os.Args) > 1 {
		tbl, _, err = strudel.LoadFile(os.Args[1], strudel.LoadOptions{})
	} else {
		tbl, _, err = strudel.LoadReader(strings.NewReader(builtin), strudel.LoadOptions{})
	}
	if err != nil {
		log.Fatal(err)
	}

	// Train on a mix of two synthetic corpora for robustness across
	// layouts (a saved model would normally be loaded here).
	var corpus []*strudel.Table
	for _, name := range []string{"saus", "govuk"} {
		fs, err := strudel.GenerateCorpus(name, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		corpus = append(corpus, fs...)
	}
	model, err := strudel.Train(corpus, strudel.TrainOptions{
		Trees: 30, Seed: 7, MaxCellsPerFile: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	ann := model.Annotate(tbl)
	header, rows := strudel.ExtractData(tbl, ann)

	fmt.Println("# clean relational table")
	fmt.Println(strings.Join(header, ","))
	for _, row := range rows {
		fmt.Println(strings.Join(row, ","))
	}

	// Everything that was stripped, for the curious.
	fmt.Println("\n# stripped verbose content")
	for r := 0; r < tbl.Height(); r++ {
		switch ann.Lines[r] {
		case strudel.ClassMetadata, strudel.ClassNotes, strudel.ClassDerived, strudel.ClassGroup:
			fmt.Printf("%-9s %s\n", ann.Lines[r], strings.Join(tbl.Row(r), " "))
		}
	}
}

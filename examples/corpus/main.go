// Corpus: generate the paper-shaped synthetic corpora, train on three of
// them, and measure cross-domain transfer on a fourth — the Table 7
// experiment in miniature, built entirely on the public API.
//
// Run with:
//
//	go run ./examples/corpus
package main

import (
	"fmt"
	"log"

	"strudel"
)

func main() {
	// Assemble the training set the paper uses for its transfer study.
	var train []*strudel.Table
	for _, name := range []string{"saus", "cius", "deex"} {
		files, err := strudel.GenerateCorpus(name, 0.3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated %-6s: %d files\n", name, len(files))
		train = append(train, files...)
	}

	model, err := strudel.Train(train, strudel.TrainOptions{
		Trees: 40, Seed: 11, MaxCellsPerFile: 400,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Score line predictions on the out-of-domain Troy corpus.
	test, err := strudel.GenerateCorpus("troy", 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated troy  : %d files (held out)\n\n", len(test))

	var correct, total [strudel.NumClasses]int
	for _, f := range test {
		pred := model.ClassifyLines(f)
		for r := 0; r < f.Height(); r++ {
			gold := f.LineClasses[r]
			idx := gold.Index()
			if idx < 0 {
				continue
			}
			total[idx]++
			if pred[r] == gold {
				correct[idx]++
			}
		}
	}

	fmt.Println("out-of-domain per-class line recall (train SAUS+CIUS+DeEx, test Troy):")
	for i, cls := range strudel.Classes {
		if total[i] == 0 {
			continue
		}
		fmt.Printf("  %-9s %5.1f%%  (%d lines)\n",
			cls, 100*float64(correct[i])/float64(total[i]), total[i])
	}
	fmt.Println("\nderived lines suffer out of domain because Troy's aggregation")
	fmt.Println("lines rarely carry anchoring keywords — the failure mode the")
	fmt.Println("paper analyzes in Section 6.3.3.")
}

// Audit: use the derived-cell detection of Algorithm 2 to check the
// arithmetic of a statistical report. Lines that announce an aggregation
// ("Total", "Average", ...) but whose numbers cannot be reproduced from the
// surrounding data are flagged. In the example report the first table's
// totals are correct; the second table's totals were mangled.
//
// Run with:
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"strings"

	"strudel"
)

const report = `Quarterly Widget Shipments,,,
,,,
Factory,Q1,Q2,Q3
Lyon,120,150,170
Porto,80,90,110
Gdansk,200,210,190
Total,400,450,470
,,,
Returned Units,,,
Factory,Q1,Q2,Q3
Lyon,12,15,17
Porto,8,9,11
Gdansk,20,21,19
Total,40,245,947
`

func main() {
	tbl, _, err := strudel.LoadReader(strings.NewReader(report), strudel.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}

	derived := strudel.DetectDerivedCells(tbl)

	fmt.Println("arithmetic audit")
	fmt.Println("================")
	clean := true
	for r := 0; r < tbl.Height(); r++ {
		// Only audit lines that claim to aggregate.
		announces := false
		numeric := 0
		detected := 0
		for c := 0; c < tbl.Width(); c++ {
			v := strings.TrimSpace(tbl.Cell(r, c))
			if strudel.ContainsAggregationWord(v) {
				announces = true
			}
			if v != "" && isNumeric(v) {
				numeric++
				if derived[r][c] {
					detected++
				}
			}
		}
		if !announces || numeric == 0 {
			continue
		}
		label := strings.TrimSpace(tbl.Cell(r, 0))
		if detected > 0 {
			fmt.Printf("line %2d (%s): ok — %d/%d values verified as aggregations\n",
				r+1, label, detected, numeric)
			continue
		}
		clean = false
		fmt.Printf("line %2d (%s): SUSPICIOUS — announced totals cannot be reproduced from the data\n",
			r+1, label)
	}
	if clean {
		fmt.Println("\nall announced aggregates check out")
	} else {
		fmt.Println("\nsome announced aggregates do not match their data — check the report")
	}
}

// isNumeric is a loose digit test; the library's own type inference does
// the real work inside DetectDerivedCells.
func isNumeric(v string) bool {
	for _, r := range v {
		if (r < '0' || r > '9') && r != '.' && r != ',' && r != '-' {
			return false
		}
	}
	return true
}

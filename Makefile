# Tier-1 verification plus static analysis and race checking.
#
#   make tier1   build + test (the roadmap's tier-1 gate)
#   make check   tier1 plus `go vet` and the race detector
#   make bench   annotate-path micro-benchmarks (single file + batch)

GO ?= go

.PHONY: build test vet race tier1 check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

tier1: build test

check: vet tier1 race

bench:
	$(GO) test -bench 'BenchmarkAnnotate' -benchmem -run '^$$' .

# Tier-1 verification plus static analysis and race checking.
#
#   make tier1        build + test (the roadmap's tier-1 gate)
#   make lint         run the strudel-lint analyzer suite over ./...
#   make lint-models  verify the model-artifact corpus (valid pass, corrupt fail)
#   make check        tier1 plus `go vet`, strudel-lint, artifacts, the race
#                     detector, and the bench-gate throughput regression gate
#   make bench-gate   measure both annotation paths and fail on a >10%
#                     throughput regression against the committed snapshot
#   make fuzz-smoke   run each fuzz target briefly (regression smoke, ~30s)
#   make bench        annotate-path micro-benchmarks (single file + batch)
#   make bench-lint   full-repo analyzer-suite benchmark; fails if linting
#                     the repo exceeds the 2.5 s/op budget
#   make bench-obs    batch annotation with nil vs active observability hooks
#   make bench-predict inference-layer micro-benchmarks: forest matrix
#                     kernels (compiled vs pointer) and model decode
#                     (JSON vs binary)
#   make bench-stream streaming throughput benchmark + the full >= 256 MiB
#                     bounded-memory proof (the default test run uses 32 MiB)
#   make race-stream  race detector over the streaming/window code only (fast)
#   make race-serve   race detector over the annotation service only (fast)
#   make serve-smoke  build strudel-serve, start it on an ephemeral port,
#                     health-check, round-trip an annotation, verify the 413
#                     mapping, and require a clean SIGTERM drain

GO ?= go
FUZZTIME ?= 10s
# The committed performance baseline bench-gate judges against.
BENCH_BASELINE ?= BENCH_10.json
# Full-repo lint wall-clock budget, ns/op (2.5 s): the memoized call graph
# must keep the whole analyzer suite inside it.
LINT_BUDGET_NS ?= 2500000000

.PHONY: build test vet lint lint-reslife lint-models race race-stream race-serve serve-smoke tier1 check fuzz-smoke bench bench-gate bench-lint bench-obs bench-predict bench-stream

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/strudel-lint ./...

# Focused resource-lifetime pass over the tiers where a leaked file,
# cancel func, or goroutine survives past one request: the serve stack
# and the binaries. `make lint` already covers these checks module-wide;
# this target is the fast CI probe for them.
lint-reslife:
	$(GO) run ./cmd/strudel-lint -checks rescleak,lostcancel,goroleak ./internal/serve/... ./cmd/...

# The corpus gate cuts both ways: every valid_ artifact must verify clean
# AND every corrupt_ artifact must be rejected — a verifier that stops
# rejecting is as broken as one that stops accepting.
lint-models:
	$(GO) run ./cmd/strudel-lint -models 'testdata/models/valid_*.json'
	! $(GO) run ./cmd/strudel-lint -models 'testdata/models/corrupt_*.json' > /dev/null 2>&1

race:
	$(GO) test -race ./...

tier1: build test

check: vet lint lint-models tier1 race bench-gate serve-smoke

# Throughput regression gate: re-measure both annotation paths (best of 3)
# and fail on any metric >10% below the committed baseline snapshot.
bench-gate:
	$(GO) run ./cmd/strudel-perf -compare $(BENCH_BASELINE)

# Each -fuzz flag accepts one target per `go test` invocation, so the
# smoke runs are sequential. -run '^$' skips the unit tests.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSplit$$' -fuzztime $(FUZZTIME) ./internal/dialect
	$(GO) test -run '^$$' -fuzz '^FuzzInfer$$' -fuzztime $(FUZZTIME) ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzParseNumber$$' -fuzztime $(FUZZTIME) ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzIngest$$' -fuzztime $(FUZZTIME) ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzTableParse$$' -fuzztime $(FUZZTIME) .

bench:
	$(GO) test -bench 'BenchmarkAnnotate' -benchmem -run '^$$' .

# The ns/op field is column 3 of `go test -bench` output; the awk guard
# fails the target when the full-repo suite blows the wall-clock budget
# (i.e. when something rebuilds the call graph per analyzer again).
bench-lint:
	$(GO) test -bench 'BenchmarkLint' -benchmem -run '^$$' ./internal/analysis | tee /tmp/strudel-bench-lint.out
	awk '/^BenchmarkLint/ { found=1; if ($$3+0 > $(LINT_BUDGET_NS)) { print "bench-lint: " $$3 " ns/op exceeds the $(LINT_BUDGET_NS) ns budget"; bad=1 } } END { if (!found) { print "bench-lint: no BenchmarkLint result found"; exit 1 }; exit bad }' /tmp/strudel-bench-lint.out

bench-obs:
	$(GO) test -bench 'BenchmarkAnnotateAllObs' -benchmem -count 5 -run '^$$' .

# Inference-layer micro-benchmarks: the matrix kernels of both forest
# engines (compiled flattened vs pointer) plus model decode in both
# encodings — the numbers the predict_path/model_load snapshot fields track.
bench-predict:
	$(GO) test -bench 'BenchmarkPredict|BenchmarkForestDecode' -benchmem -run '^$$' ./internal/ml/forest
	$(GO) test -bench 'BenchmarkModelLoad' -benchmem -run '^$$' .

# Streaming: throughput benchmark, then the full-size bounded-memory proof
# (a >= 256 MiB generated file annotated under a constant live-heap ceiling).
bench-stream:
	$(GO) test -bench 'BenchmarkAnnotateStream' -benchmem -run '^$$' .
	STRUDEL_STREAM_HEAVY=1 $(GO) test -run TestAnnotateStreamBoundedMemory -count 1 -v -timeout 30m .

# The streaming driver fans equivalence checks across goroutines; this runs
# just the window/stream tests under the race detector (make race covers
# everything but takes far longer).
race-stream:
	$(GO) test -race -run 'TestAnnotateStream|TestWindow|TestScanner|TestSplitter' -count 1 . ./internal/pipeline ./internal/ingest ./internal/dialect

# The service's admission/coalescing/drain machinery is concurrency-dense;
# this runs its fault suite and the end-to-end test under the race detector
# without waiting for the full `make race`.
race-serve:
	$(GO) test -race -count 1 ./internal/serve
	$(GO) test -race -count 1 -run 'TestServeEndToEnd' .

# Full external lifecycle of the daemon: build, ephemeral port, health
# check, annotation round-trip, deterministic 413, clean SIGTERM drain.
serve-smoke:
	./scripts/serve_smoke.sh

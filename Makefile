# Tier-1 verification plus static analysis and race checking.
#
#   make tier1       build + test (the roadmap's tier-1 gate)
#   make lint        run the strudel-lint analyzer suite over ./...
#   make check       tier1 plus `go vet`, strudel-lint, and the race detector
#   make fuzz-smoke  run each fuzz target briefly (regression smoke, ~30s)
#   make bench       annotate-path micro-benchmarks (single file + batch)

GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet lint race tier1 check fuzz-smoke bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/strudel-lint ./...

race:
	$(GO) test -race ./...

tier1: build test

check: vet lint tier1 race

# Each -fuzz flag accepts one target per `go test` invocation, so the
# smoke runs are sequential. -run '^$' skips the unit tests.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSplit$$' -fuzztime $(FUZZTIME) ./internal/dialect
	$(GO) test -run '^$$' -fuzz '^FuzzInfer$$' -fuzztime $(FUZZTIME) ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzParseNumber$$' -fuzztime $(FUZZTIME) ./internal/types
	$(GO) test -run '^$$' -fuzz '^FuzzIngest$$' -fuzztime $(FUZZTIME) ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzTableParse$$' -fuzztime $(FUZZTIME) .

bench:
	$(GO) test -bench 'BenchmarkAnnotate' -benchmem -run '^$$' .

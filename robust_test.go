package strudel

// Robustness regression tests: the hostile corpus must never panic the
// loader or the batch annotator, and a poisoned file in a batch must not
// affect its neighbors (the PR's fault-isolation acceptance criterion).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"strudel/internal/ingest"
	"strudel/internal/pipeline"
	"strudel/internal/table"
)

// loadHostile loads one hostile file, requiring either a typed taxonomy
// error or a well-formed table — never a panic, never an untyped error.
func loadHostile(t *testing.T, path string, opts LoadOptions) *Table {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: loader panicked: %v", path, r)
		}
	}()
	tbl, _, err := LoadFile(path, opts)
	if err != nil {
		for _, sentinel := range []error{ErrTooLarge, ErrBadEncoding, ErrEmptyInput,
			ErrLineTooLong, ErrTooManyLines, ErrTooManyCells} {
			if errors.Is(err, sentinel) {
				return nil
			}
		}
		t.Fatalf("%s: untyped load error: %v", path, err)
	}
	if tbl.Height() > 0 && tbl.Width() <= 0 {
		t.Fatalf("%s: non-empty table with width %d", path, tbl.Width())
	}
	return tbl
}

// hostilePaths returns the committed crash corpus plus the generated one
// (including the 10MB single-line case, which is too large to commit),
// materialized under a temp dir.
func hostilePaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "hostile", "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("committed hostile corpus has only %d files", len(paths))
	}
	dir := t.TempDir()
	for _, f := range ingest.GenerateHostile(ingest.FaultOptions{Seed: 99}) {
		p := filepath.Join(dir, f.Name)
		if err := os.WriteFile(p, f.Data, 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	return paths
}

// TestHostileCorpusNeverPanics is the crash-corpus regression: every
// hostile file either loads into a valid Table or fails with a typed
// ingest error, and the survivors annotate cleanly under a full-width
// worker pool.
func TestHostileCorpusNeverPanics(t *testing.T) {
	var files []*Table
	for _, p := range hostilePaths(t) {
		if tbl := loadHostile(t, p, LoadOptions{}); tbl != nil {
			files = append(files, tbl)
		}
		// Strict mode must reject more, never panic.
		loadHostile(t, p, LoadOptions{Ingest: IngestOptions{Strict: true}})
	}
	if len(files) == 0 {
		t.Fatal("every hostile file was rejected; the corpus should contain repairable files")
	}

	m := trainedModel(t)
	anns := m.AnnotateAll(files, BatchOptions{Parallelism: runtime.NumCPU()})
	for i, ann := range anns {
		if ann == nil {
			t.Fatalf("file %d (%s): nil annotation", i, files[i].Name)
		}
		if ann.Err != nil {
			t.Errorf("file %d (%s): unexpected batch error: %v", i, files[i].Name, ann.Err)
			continue
		}
		if len(ann.Lines) != files[i].Height() {
			t.Errorf("file %d (%s): %d line classes for height %d",
				i, files[i].Name, len(ann.Lines), files[i].Height())
		}
	}
}

// TestHostileProvenance spot-checks that the repairs the loader performs on
// the committed corpus are visible in provenance.
func TestHostileProvenance(t *testing.T) {
	cases := map[string]func(p *Provenance) bool{
		"nul_ridden.csv":      func(p *Provenance) bool { return p.NULsStripped > 0 },
		"latin1.csv":          func(p *Provenance) bool { return p.Encoding == "latin-1" },
		"utf16_no_bom.csv":    func(p *Provenance) bool { return p.Encoding == "utf-16le" && !p.BOM },
		"utf16_be.csv":        func(p *Provenance) bool { return p.Encoding == "utf-16be" && p.BOM },
		"truncated_utf16.csv": func(p *Provenance) bool { return p.Encoding == "utf-16le" },
		"mixed_endings.csv":   func(p *Provenance) bool { return p.LineEndingsNormalized > 0 },
		"bom_utf8.csv":        func(p *Provenance) bool { return p.Encoding == "utf-8" && p.BOM },
	}
	for name, check := range cases {
		path := filepath.Join("testdata", "hostile", name)
		tbl, _, err := LoadFile(path, LoadOptions{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if tbl.Provenance == nil {
			t.Errorf("%s: table has no provenance", name)
			continue
		}
		if !check(tbl.Provenance) {
			t.Errorf("%s: provenance %+v fails its check", name, *tbl.Provenance)
		}
	}
	for _, name := range []string{"empty.csv", "whitespace.csv"} {
		if _, _, err := LoadFile(filepath.Join("testdata", "hostile", name), LoadOptions{}); !errors.Is(err, ErrEmptyInput) {
			t.Errorf("%s: err = %v, want ErrEmptyInput", name, err)
		}
	}
	if _, _, err := LoadFile(filepath.Join("testdata", "hostile", "binary_blob.csv"), LoadOptions{}); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("binary_blob.csv: err = %v, want ErrBadEncoding", err)
	}
}

// TestAnnotationSurfacesDegradation: annotations of repaired files carry
// the guard names; clean files carry none.
func TestAnnotationSurfacesDegradation(t *testing.T) {
	m := trainedModel(t)

	tbl, _, err := LoadFile(filepath.Join("testdata", "hostile", "nul_ridden.csv"), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ann := m.Annotate(tbl)
	if ann.Provenance == nil || len(ann.Degraded) == 0 {
		t.Errorf("repaired file: Provenance=%v Degraded=%v, want populated", ann.Provenance, ann.Degraded)
	}

	clean, _, err := LoadBytes([]byte(sampleCSV), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ann = m.Annotate(clean)
	if len(ann.Degraded) != 0 {
		t.Errorf("clean file marked degraded: %v", ann.Degraded)
	}
	if ann.Provenance == nil || ann.Provenance.DialectFallback {
		t.Errorf("clean file provenance = %+v, want confident dialect", ann.Provenance)
	}
}

// TestBatchFaultIsolation is the headline acceptance criterion: a batch
// containing one file whose annotation panics completes every other file,
// returns a per-file error for the poisoned one, and is byte-identical on
// the survivors to a clean run.
func TestBatchFaultIsolation(t *testing.T) {
	m := trainedModel(t)
	const n = 8
	const poisoned = 3
	files := make([]*Table, n)
	for i := range files {
		files[i] = Parse(sampleCSV, DefaultDialect)
		files[i].Name = string(rune('a'+i)) + ".csv"
	}

	clean := m.AnnotateAll(files, BatchOptions{Parallelism: 4})

	hook := func(tbl *table.Table) {
		if tbl.Name == files[poisoned].Name {
			panic("injected fault: " + tbl.Name)
		}
	}
	annotateTestHook.Store(&hook)
	t.Cleanup(func() { annotateTestHook.Store(nil) })
	faulted := m.AnnotateAll(files, BatchOptions{Parallelism: 4})
	annotateTestHook.Store(nil)

	for i := 0; i < n; i++ {
		if i == poisoned {
			if faulted[i].Err == nil {
				t.Fatal("poisoned file has no error")
			}
			var pe *pipeline.PanicError
			if !errors.As(faulted[i].Err, &pe) {
				t.Errorf("poisoned file error = %v, want a wrapped *pipeline.PanicError", faulted[i].Err)
			} else if pe.Value != "injected fault: "+files[poisoned].Name {
				t.Errorf("recovered panic value = %v", pe.Value)
			}
			if !strings.Contains(faulted[i].Err.Error(), files[poisoned].Name) {
				t.Errorf("error %q does not name the poisoned file", faulted[i].Err)
			}
			if faulted[i].Lines != nil {
				t.Error("poisoned file carries predictions alongside its error")
			}
			continue
		}
		if faulted[i].Err != nil {
			t.Errorf("survivor %s has error: %v", files[i].Name, faulted[i].Err)
			continue
		}
		want, err := json.Marshal(clean[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(faulted[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("survivor %s differs from the clean run", files[i].Name)
		}
	}
}

// TestAnnotateAllContextCancellation: a cancelled batch still returns one
// non-nil annotation per input, with Err explaining the abort.
func TestAnnotateAllContextCancellation(t *testing.T) {
	m := trainedModel(t)
	files := make([]*Table, 20)
	for i := range files {
		files[i] = Parse(sampleCSV, DefaultDialect)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	anns := m.AnnotateAllContext(ctx, files, BatchOptions{Parallelism: 4})
	if len(anns) != len(files) {
		t.Fatalf("%d annotations for %d files", len(anns), len(files))
	}
	aborted := 0
	for i, ann := range anns {
		if ann == nil {
			t.Fatalf("slot %d is nil", i)
		}
		if ann.Err != nil {
			if !errors.Is(ann.Err, context.Canceled) {
				t.Errorf("slot %d: err = %v, want context.Canceled", i, ann.Err)
			}
			aborted++
		}
	}
	if aborted == 0 {
		t.Error("pre-cancelled batch aborted nothing")
	}
}

// failingReader yields a little data, then fails with a fixed error —
// standing in for a read interrupted by cancellation.
type failingReader struct {
	err  error
	done bool
}

func (r *failingReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	r.done = true
	return copy(p, "a,b,c\n"), nil
}

// TestCancelledReadSurfacesTyped: a context cancellation or deadline that
// interrupts ingestion surfaces through the typed taxonomy — the returned
// error satisfies errors.Is for BOTH the strudel.ErrCancelled sentinel and
// the underlying context error, so callers can dispatch on either.
func TestCancelledReadSurfacesTyped(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		_, _, err := LoadReader(&failingReader{err: cause}, LoadOptions{})
		if err == nil {
			t.Fatalf("%v: LoadReader succeeded on an interrupted read", cause)
		}
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("%v: err = %v, want errors.Is(_, ErrCancelled)", cause, err)
		}
		if !errors.Is(err, cause) {
			t.Errorf("%v: err = %v, want errors.Is against the context error", cause, err)
		}
		var ge *ingest.GuardError
		if !errors.As(err, &ge) {
			t.Errorf("%v: err = %T, want *ingest.GuardError", cause, err)
		}
	}
	// An unrelated read error must NOT be claimed by the cancellation class.
	_, _, err := LoadReader(&failingReader{err: errors.New("disk on fire")}, LoadOptions{})
	if err == nil {
		t.Fatal("LoadReader succeeded on a failing read")
	}
	if errors.Is(err, ErrCancelled) {
		t.Errorf("non-cancellation read error classified as ErrCancelled: %v", err)
	}
}

// TestTrainContextCancellation: training honors its context — a cancelled
// ctx stops the fit and returns the context error instead of a model.
func TestTrainContextCancellation(t *testing.T) {
	files, err := GenerateCorpus("saus", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := TrainContext(ctx, files, TrainOptions{Trees: 10, Seed: 1, LineOnly: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Error("cancelled training still returned a model")
	}
}

// TestFileTimeout: a file that stalls past BatchOptions.FileTimeout comes
// back with a deadline error while the rest of the batch completes.
func TestFileTimeout(t *testing.T) {
	m := trainedModel(t)
	files := make([]*Table, 4)
	for i := range files {
		files[i] = Parse(sampleCSV, DefaultDialect)
		files[i].Name = string(rune('a'+i)) + ".csv"
	}
	const slow = 2
	hook := func(tbl *table.Table) {
		if tbl.Name == files[slow].Name {
			time.Sleep(2 * time.Second)
		}
	}
	annotateTestHook.Store(&hook)
	t.Cleanup(func() { annotateTestHook.Store(nil) })
	anns := m.AnnotateAll(files, BatchOptions{Parallelism: 4, FileTimeout: 100 * time.Millisecond})
	annotateTestHook.Store(nil)

	for i, ann := range anns {
		if i == slow {
			if !errors.Is(ann.Err, context.DeadlineExceeded) {
				t.Errorf("slow file: err = %v, want context.DeadlineExceeded", ann.Err)
			}
			continue
		}
		if ann.Err != nil {
			t.Errorf("fast file %s timed out: %v", files[i].Name, ann.Err)
		}
	}
}

// TestDialectConfidenceFallback: a detection score under the configured
// floor parses the file under the comma dialect and marks it degraded
// instead of committing to a low-confidence dialect.
func TestDialectConfidenceFallback(t *testing.T) {
	text := "a;b;c\n1;2;3\n4;5;6\n7;8;9\n"
	// With the floor raised above any achievable score, the semicolon winner
	// must be discarded in favor of the predictable comma fallback.
	tbl, d, err := LoadBytes([]byte(text), LoadOptions{MinDialectScore: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ',' {
		t.Errorf("fallback dialect = %v, want comma", d)
	}
	if tbl.Provenance == nil || !tbl.Provenance.DialectFallback {
		t.Errorf("provenance = %+v, want DialectFallback", tbl.Provenance)
	}
	if reasons := tbl.Provenance.DegradedReasons(); len(reasons) == 0 {
		t.Error("dialect fallback not surfaced in DegradedReasons")
	}

	// Under the default floor the same text keeps its detected dialect.
	tbl, d, err = LoadBytes([]byte(text), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Delimiter != ';' {
		t.Errorf("detected dialect = %v, want semicolon", d)
	}
	if tbl.Provenance.DialectFallback {
		t.Error("clean semicolon file fell back to comma")
	}
}

// TestForceDialect: ForceDialect bypasses detection entirely.
func TestForceDialect(t *testing.T) {
	d := Dialect{Delimiter: '|', Quote: '"'}
	tbl, got, err := LoadBytes([]byte("a|b\n1|2\n"), LoadOptions{ForceDialect: &d})
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Errorf("dialect = %v, want %v", got, d)
	}
	if tbl.Width() != 2 || tbl.Cell(0, 1) != "b" {
		t.Errorf("table = %dx%d", tbl.Height(), tbl.Width())
	}
}

// TestCleanTestdataNotDegraded validates the DefaultMinDialectScore floor
// empirically: none of the repo's clean sample files may trip it.
func TestCleanTestdataNotDegraded(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		tbl, _, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if tbl.Provenance.DialectFallback {
			t.Errorf("%s: clean file hit the dialect-confidence floor (score %.4f)",
				p, tbl.Provenance.DialectScore)
		}
		if len(tbl.Provenance.Guards) != 0 {
			t.Errorf("%s: clean file tripped guards %v", p, tbl.Provenance.Guards)
		}
	}
}

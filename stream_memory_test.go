package strudel

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"strudel/internal/datagen"
)

// lineOnlyModel trains a cheap Strudel^L-only model; the memory proof cares
// about the pipeline's footprint, not cell-model quality.
func lineOnlyModel(tb testing.TB) *Model {
	tb.Helper()
	files, err := GenerateCorpus("saus", 0.3)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := Train(files, TrainOptions{Trees: 10, Seed: 1, LineOnly: true})
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

// TestAnnotateStreamBoundedMemory is the bounded-memory proof: a
// datagen-sized file streams through annotation while the test samples the
// live heap (runtime.MemStats.HeapAlloc after forced GC) from inside the
// emit callback, and the peak must stay under a constant ceiling that does
// not scale with the file.
//
// `go test` (and make check) runs a 32 MiB file as a smoke; make
// bench-stream sets STRUDEL_STREAM_HEAVY=1 to run the full >= 256 MiB
// variant, where the file is larger than the ceiling itself — streaming the
// input through an in-memory path would be physically unable to pass.
func TestAnnotateStreamBoundedMemory(t *testing.T) {
	target := int64(32 << 20)
	if os.Getenv("STRUDEL_STREAM_HEAVY") != "" {
		target = 256 << 20
	} else if testing.Short() {
		t.Skip("short mode")
	}

	path := filepath.Join(t.TempDir(), "big.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	written, _, err := datagen.WriteSized(f, datagen.Mendeley(), target)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if written < target {
		t.Fatalf("generated only %d bytes", written)
	}

	m := lineOnlyModel(t)

	// The live-heap ceiling: window buffers + per-window feature matrices +
	// the trained model, with slack for GC timing. Deliberately far below
	// the heavy file size (256 MiB), so passing proves O(window) memory.
	const ceiling = 192 << 20

	var peak uint64
	sample := func() {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	}
	sample() // baseline with the model loaded

	// Lift the MaxLines guard (negative = unlimited): the heavy file has
	// more lines than the 1M default, and this proof is about annotating
	// the WHOLE file, not a guarded prefix.
	opts := StreamOptions{Load: LoadOptions{Ingest: IngestOptions{MaxLines: -1}}}
	lines := 0
	sum, err := m.AnnotateFileStream(context.Background(), path, opts, func(la LineAnnotation) error {
		lines++
		if lines%50000 == 0 {
			sample()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sample()

	if sum.Windows < 2 {
		t.Fatalf("file produced %d windows; the windowed path was not exercised", sum.Windows)
	}
	if sum.Lines != lines || lines == 0 {
		t.Fatalf("emitted %d lines, summary says %d", lines, sum.Lines)
	}
	if sum.Provenance.LinesDropped != 0 {
		t.Fatalf("%d lines dropped; the proof must cover the whole file", sum.Provenance.LinesDropped)
	}
	t.Logf("streamed %d MiB, %d lines, %d windows; peak live heap %d MiB (ceiling %d MiB)",
		written>>20, lines, sum.Windows, peak>>20, int64(ceiling)>>20)
	if peak > ceiling {
		t.Fatalf("peak live heap %d bytes exceeds the %d-byte ceiling; streaming memory is not bounded", peak, int64(ceiling))
	}
}
